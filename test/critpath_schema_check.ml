(* @critpath-schema drift guard.

   Two fixed seeded campaigns are recorded at Full level and pushed through
   the vspath pipeline; the committed artifacts freeze its rendered formats:

     - test/critpath_sample.folded — Flame.folded of the seed-3 recording
       (the flamegraph.pl input format: sorted "frames count" lines);
     - test/critpath_sample.diff.txt — Rundiff.to_text of seed 3 vs seed 4
       (divergence report, alignment lines, per-phase delta table).

   The check regenerates both from the current code and verifies

     1. byte-identity with the committed files (stack spelling, sort order,
       integer-microsecond values, table layout and float repr are all
       frozen);
     2. structural invariants of the folded format: every line is
       "view;kind;owner <positive integer>", lines strictly sorted, every
       kind one of the six segment kinds;
     3. the diff sample reports a divergence (the two seeds genuinely
       differ) and carries every per-phase row.

   Regenerate after an intentional format change with:

     dune exec test/critpath_schema_check.exe -- --write \
       test/critpath_sample.folded test/critpath_sample.diff.txt
*)

module Recorder = Vs_obs.Recorder
module Critpath = Vs_obs.Critpath
module Flame = Vs_obs.Flame
module Rundiff = Vs_obs.Rundiff
module Campaign = Vs_check.Campaign

let record seed =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  Recorder.entries recorder

let folded_sample () = Flame.folded (Critpath.of_entries (record 3))

let diff_sample () = Rundiff.to_text (Rundiff.diff ~a:(record 3) ~b:(record 4))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "critpath-schema FAIL: %s\n" msg)
    fmt

let seg_kind_names = List.map Critpath.seg_kind_to_string Critpath.all_seg_kinds

let validate_folded text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  if lines = [] then fail "folded sample is empty";
  let prev = ref "" in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      (match String.rindex_opt line ' ' with
      | None -> fail "folded line %d has no value: %S" lineno line
      | Some j ->
          let stack = String.sub line 0 j in
          let value = String.sub line (j + 1) (String.length line - j - 1) in
          (match int_of_string_opt value with
          | Some v when v > 0 -> ()
          | Some v -> fail "folded line %d: non-positive value %d" lineno v
          | None -> fail "folded line %d: non-integer value %S" lineno value);
          (match String.split_on_char ';' stack with
          | [ _view; kind; _owner ] ->
              if not (List.mem kind seg_kind_names) then
                fail "folded line %d: unknown segment kind %S" lineno kind
          | frames ->
              fail "folded line %d: %d frames (expected view;kind;owner)"
                lineno (List.length frames)));
      if String.compare line !prev <= 0 then
        fail "folded line %d not strictly sorted" lineno;
      prev := line)
    lines

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let validate_diff text =
  if not (contains ~sub:"first causal divergence at event " text) then
    fail "diff sample reports no divergence (seeds 3 and 4 must differ)";
  if not (contains ~sub:"per-phase latency deltas" text) then
    fail "diff sample is missing the per-phase table";
  List.iter
    (fun phase ->
      if not (contains ~sub:("critpath." ^ phase) text) then
        fail "diff sample is missing the %s phase row" phase)
    seg_kind_names;
  List.iter
    (fun phase ->
      if not (contains ~sub:phase text) then
        fail "diff sample is missing the %s row" phase)
    [ "install-latency"; "propose-wait"; "flush-ack-wait"; "stability-wait" ]

let check folded_path diff_path =
  let expected_folded = folded_sample () in
  let actual_folded = read_file folded_path in
  if not (String.equal actual_folded expected_folded) then
    fail "%s is out of date with the folded-stack format — regenerate with \
          --write"
      folded_path;
  validate_folded actual_folded;
  let expected_diff = diff_sample () in
  let actual_diff = read_file diff_path in
  if not (String.equal actual_diff expected_diff) then
    fail "%s is out of date with the diff-runs rendering — regenerate with \
          --write"
      diff_path;
  validate_diff actual_diff;
  if !failures = 0 then print_endline "critpath-schema OK" else exit 1

let write folded_path diff_path =
  let put path text =
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  put folded_path (folded_sample ());
  put diff_path (diff_sample ())

let () =
  match Array.to_list Sys.argv with
  | [ _; "--write"; folded; diff ] -> write folded diff
  | [ _; folded; diff ] -> check folded diff
  | _ ->
      prerr_endline
        "usage: critpath_schema_check [--write] <sample.folded> \
         <sample.diff.txt>";
      exit 2
