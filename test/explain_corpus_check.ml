(* dune build @explain-corpus — run the failure-attribution pipeline over
   every committed corpus repro and assert the output is deterministic:
   byte-identical across two independent runs, and identical to the
   committed <name>.explain.txt artifact when one exists.  Regenerate an
   artifact after an intentional format change with
     dune exec bin/vscli.exe -- explain --replay test/corpus/<name>.sexp \
       > test/corpus/<name>.explain.txt *)

module Recorder = Vs_obs.Recorder
module Campaign = Vs_check.Campaign
module Repro = Vs_check.Repro
module Explain_run = Vs_check.Explain_run

let explain_once spec =
  let obs = Recorder.create ~level:Recorder.Full () in
  let outcome = Campaign.run ~obs spec in
  Explain_run.to_text
    (Explain_run.build ~spec ~outcome ~entries:(Recorder.entries obs))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "corpus" in
  let entries = Repro.load_dir dir in
  if entries = [] then begin
    Printf.eprintf "no corpus artifacts under %s\n" dir;
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun (path, spec) ->
      match spec with
      | Error msg ->
          Printf.eprintf "%s: cannot load: %s\n" path msg;
          failed := true
      | Ok spec ->
          let a = explain_once spec in
          let b = explain_once spec in
          if a <> b then begin
            Printf.eprintf "%s: explanation differs across two runs\n" path;
            failed := true
          end
          else
            let artifact = Filename.remove_extension path ^ ".explain.txt" in
            if Sys.file_exists artifact && read_file artifact <> a then begin
              Printf.eprintf
                "%s: explanation drifted from committed %s — regenerate it \
                 with: dune exec bin/vscli.exe -- explain --replay %s > %s\n"
                path artifact path artifact;
              failed := true
            end
            else
              Printf.printf "%s: ok (%d bytes, deterministic)\n" path
                (String.length a))
    entries;
  if !failed then exit 1
