(* A1 fixture: annotated functions that allocate; each finding names the
   allocating construct and its site. *)

(* vslint: alloc-free *)
let pair x y = (x, y)

(* vslint: alloc-free *)
let capture x l = List.iter (fun y -> ignore (x + y)) l

let make_pair x = (x, 0)

(* vslint: alloc-free *)
let wraps x = make_pair x
