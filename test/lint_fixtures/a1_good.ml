(* A1 fixture: genuinely allocation-free functions, including one that
   calls a clean same-file helper. *)

(* vslint: alloc-free *)
let add x y = x + y

(* vslint: alloc-free *)
let max2 a b = if a > b then a else b

let helper x = x + 1

(* vslint: alloc-free *)
let uses x = helper x
