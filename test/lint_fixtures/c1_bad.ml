(* C1 fixture: protocol-layer code reaching the wall clock through a
   two-hop helper chain; no per-file rule fires in this file — only the
   whole-program pass catches it, and the report carries the full chain. *)

let decide () = C1_util.stamp () > 1.0

let relay () = decide ()
