(* C1 fixture: protocol code reaching time only through the injected
   capability — certifies clean. *)

let decide () = C1_sim.now () > 1.0
