(* C1 fixture: the sanctioned capability module — ambient effects are
   masked at this boundary, so callers stay clean. *)

let now () = Unix.gettimeofday ()
