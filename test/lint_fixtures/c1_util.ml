(* C1 fixture: helpers that launder the wall clock.  Per-file linting only
   flags the leaf (D1); the whole-program pass makes every caller inherit
   Ambient_time through this two-hop chain. *)

let raw_now () = Unix.gettimeofday ()

let stamp () = raw_now () +. 1.0
