(* Bad: ambient randomness and wall-clock reads outside lib/sim and Rng. *)
let jitter () = Random.float 0.5
let stamp () = Unix.gettimeofday ()
