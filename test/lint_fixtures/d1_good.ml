(* Good: randomness flows through the campaign-seeded generator and time
   through the simulated clock. *)
let jitter rng = Vs_util.Rng.float rng 0.5
let stamp sim = Vs_sim.Sim.now sim
