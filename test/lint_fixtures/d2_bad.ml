(* Bad: raw Hashtbl enumeration feeds the caller in hash-bucket order. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let visit tbl f = Hashtbl.iter (fun k v -> f k v) tbl
