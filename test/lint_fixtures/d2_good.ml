(* Good: enumeration goes through the sorted helpers, which impose a total
   order before anyone sees the result. *)
let keys tbl = Vs_util.Hashtblx.sorted_keys ~cmp:Int.compare tbl
let bindings tbl = Vs_util.Hashtblx.sorted_bindings ~cmp:String.compare tbl
