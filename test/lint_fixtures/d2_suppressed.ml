(* Good: the fold is commutative, and the suppression says why. *)
let total tbl =
  (* vslint: allow D2 — commutative fold (sum) *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
