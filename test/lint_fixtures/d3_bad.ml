(* Bad: partial operations crash with contextless exceptions. *)
let first xs = List.hd xs
let rest xs = List.tl xs
let forced o = Option.get o
let lookup tbl k = Hashtbl.find tbl k
