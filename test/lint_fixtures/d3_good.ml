(* Good: the missing case is an explicit match with a descriptive error. *)
let first = function
  | x :: _ -> x
  | [] -> invalid_arg "d3_good.first: empty list"

let lookup tbl k =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None -> invalid_arg "d3_good.lookup: unknown key"
