(* Bad: Obj.magic and physical equality on structural data. *)
let coerce x = Obj.magic x
let same a b = a == b
