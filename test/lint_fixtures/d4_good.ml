(* Good: structural comparison through the type's own equality. *)
let same a b = String.equal a b
