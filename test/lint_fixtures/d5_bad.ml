(* Bad: polymorphic compare on protocol data. *)
let sort_members ms = List.sort compare ms
let ordered a b = Stdlib.compare a b
