(* Good: a named element comparator, or a local binding that shadows the
   polymorphic one. *)
let sort_members ms = List.sort My_id.compare ms

let compare a b = Int.compare a b

let sort_ints xs = List.sort compare xs
