(* Bad: the allow carries no justification, so it suppresses nothing and is
   itself a finding. *)
let total tbl =
  (* vslint: allow D2 *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
