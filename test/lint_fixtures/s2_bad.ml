(* S2 fixture: a justified allow whose rule no longer fires on the line it
   guards or the line below — the flagged site drifted away. *)

let safe_sum l = List.fold_left ( + ) 0 l

(* vslint: allow D2 — commutative fold *)
let unrelated = 1
