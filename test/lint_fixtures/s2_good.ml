(* S2 fixture: a justified allow still guarding a live D2 finding. *)

let total tbl =
  (* vslint: allow D2 — commutative sum *)
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
