(* @openmetrics-schema drift guard.

   A fixed synthetic Metrics registry covering every family type the
   exposition can emit — counters, gauges (finite and non-finite),
   histograms (empty, in-range, under/overflow) and names needing
   sanitization — is rendered with Openmetrics.of_metrics and committed
   as test/openmetrics_sample.txt.  This check regenerates the text from
   the current code and verifies

     1. the committed file is byte-identical to what the current emitter
        produces (family order, label spelling, float repr and the
        trailing "# EOF" are all frozen);
     2. basic structural invariants hold: every sample line belongs to a
        declared family, histogram bucket series are cumulative and end
        with the +Inf bucket equal to _count.

   Regenerate after an intentional format change with:

     dune exec test/openmetrics_schema_check.exe -- --write test/openmetrics_sample.txt
*)

module Metrics = Vs_obs.Metrics
module Openmetrics = Vs_obs.Openmetrics

let sample_registry () =
  let m = Metrics.create () in
  Metrics.incr ~by:42 m "net.sends";
  Metrics.incr m "gms.installs";
  Metrics.incr ~by:7 m "net.sends.mode.NORMAL";
  (* a name that needs sanitizing *)
  Metrics.incr m "app kv.puts%ok";
  Metrics.set_gauge m "run.last-event-time" 12.375;
  Metrics.set_gauge m "fd.suspicion-level" 0.1;
  Metrics.set_gauge m "run.skew" infinity;
  (* histogram spanning the special buckets: zero, underflow, two
     in-range samples sharing a bucket, distinct buckets, overflow *)
  List.iter
    (Metrics.observe m "view.install-latency")
    [ 0.; 1e-9; 0.25; 0.2501; 0.5; 2e7 ];
  List.iter (Metrics.observe m "vsync.flush-stall") [ 0.125 ];
  m

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "openmetrics-schema FAIL: %s\n" msg)
    fmt

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Structural pass over the exposition text: collect declared families,
   check every sample line refers to one, and re-add the histogram
   invariants (cumulative buckets, +Inf == _count). *)
let validate text =
  let lines = String.split_on_char '\n' text in
  let families = Hashtbl.create 16 in
  let metric_of_line line =
    let stop = ref (String.length line) in
    String.iteri
      (fun i c -> if (c = '{' || c = ' ') && i < !stop then stop := i)
      line;
    String.sub line 0 !stop
  in
  let strip_suffix name =
    let cut suffix =
      let n = String.length name and m = String.length suffix in
      if n > m && String.sub name (n - m) m = suffix then
        Some (String.sub name 0 (n - m))
      else None
    in
    match cut "_total" with
    | Some base -> base
    | None -> (
        match (cut "_bucket", cut "_sum", cut "_count") with
        | Some b, _, _ | _, Some b, _ | _, _, Some b -> b
        | None, None, None -> name)
  in
  let bucket_state = Hashtbl.create 4 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" || line = "# EOF" then ()
      else if starts_with ~prefix:"# TYPE " line then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              fail "line %d: unknown family type %S" lineno kind;
            Hashtbl.replace families name kind
        | _ -> fail "line %d: malformed TYPE line %S" lineno line
      end
      else begin
        let metric = metric_of_line line in
        let base = strip_suffix metric in
        (match Hashtbl.find_opt families base with
        | Some _ -> ()
        | None -> fail "line %d: sample %S has no TYPE declaration" lineno metric);
        (* track histogram bucket monotonicity *)
        if Hashtbl.find_opt families base = Some "histogram" then begin
          let value () =
            match String.rindex_opt line ' ' with
            | Some j ->
                int_of_string_opt
                  (String.sub line (j + 1) (String.length line - j - 1))
            | None -> None
          in
          match value () with
          | None -> ()
          | Some v ->
              let prev =
                Option.value ~default:(-1)
                  (Hashtbl.find_opt bucket_state base)
              in
              let is_bucket =
                let n = String.length metric in
                n >= 7 && String.sub metric (n - 7) 7 = "_bucket"
              in
              if is_bucket then begin
                if v < prev then
                  fail "line %d: %s bucket series not cumulative" lineno base;
                Hashtbl.replace bucket_state base v
              end
              else if
                String.length metric >= 6
                && String.sub metric (String.length metric - 6) 6 = "_count"
              then
                if v <> prev then
                  fail "line %d: %s +Inf bucket (%d) != _count (%d)" lineno
                    base prev v
        end
      end)
    lines;
  let n = List.length lines in
  if n < 2 || List.nth lines (n - 2) <> "# EOF" then
    fail "exposition does not end with # EOF"

let check path =
  let expected = Openmetrics.of_metrics (sample_registry ()) in
  let actual = read_file path in
  if not (String.equal actual expected) then
    fail "%s is out of date with the exposition format — regenerate with --write"
      path;
  validate actual;
  if !failures = 0 then print_endline "openmetrics-schema OK" else exit 1

let write path =
  let oc = open_out_bin path in
  output_string oc (Openmetrics.of_metrics (sample_registry ()));
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  match Array.to_list Sys.argv with
  | [ _; "--write"; path ] -> write path
  | [ _; path ] -> check path
  | _ ->
      prerr_endline "usage: openmetrics_schema_check [--write] <sample.txt>";
      exit 2
