(* dune build @sarif-schema — freeze the shape of vslint's SARIF output.

   The emitter renders a fixed synthetic report; this check compares it
   byte-for-byte against the committed sample (so field order, escaping,
   and float/int rendering cannot drift silently) and then parses the
   sample as JSON and re-validates the structural invariants every SARIF
   2.1.0 consumer relies on: version, one run, tool.driver.name, the full
   rule table, and per-result ruleId/level/location shapes.

   Regenerate the sample after an intentional emitter change with
     dune exec test/sarif_schema_check.exe -- --write test/sarif_sample.sarif *)

module Json = Vs_obs.Json
module Lint = Vs_lint.Lint
module Rules = Vs_lint.Rules
module Sarif = Vs_lint.Sarif

let rule id =
  match Rules.find id with
  | Some r -> r
  | None -> failwith ("sarif_schema_check: unknown rule " ^ id)

(* A fixed report exercising both severities, a whole-program chain message
   (with its UTF-8 arrow), and characters the emitter must escape. *)
let synthetic_findings =
  [
    {
      Lint.rule = rule "D1";
      file = "lib/example/clock.ml";
      line = 3;
      col = 17;
      message = "Unix.gettimeofday reads the wall clock; use Sim.now";
    };
    {
      Lint.rule = rule "C1";
      file = "lib/vsync/example.ml";
      line = 12;
      col = 4;
      message =
        "decide reaches Ambient_time outside the Sim capability: \
         lib/vsync/example.ml:decide \xe2\x86\x92 lib/util/clock.ml:stamp \
         \xe2\x86\x92 Unix.gettimeofday (lib/util/clock.ml:3)";
    };
    {
      Lint.rule = rule "D2";
      file = "lib/example/tabs.ml";
      line = 7;
      col = 2;
      message = "Hashtbl.fold enumerates a hash table \"in\" unspecified order";
    };
  ]

let emitted = Sarif.emit ~findings:synthetic_findings ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "sarif-schema: %s\n" msg;
      exit 1)
    fmt

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let as_list what j =
  match Json.to_list_opt j with
  | Some l -> l
  | None -> fail "%s is not an array" what

let as_string what j =
  match Json.to_string_opt j with
  | Some s -> s
  | None -> fail "%s is not a string" what

let validate text =
  let j =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> fail "sample does not parse as JSON: %s" e
  in
  if as_string "version" (member "version" j) <> "2.1.0" then
    fail "version is not 2.1.0";
  let runs = as_list "runs" (member "runs" j) in
  let run = match runs with [ r ] -> r | l -> fail "expected 1 run, got %d" (List.length l) in
  let driver = member "driver" (member "tool" run) in
  if as_string "driver.name" (member "name" driver) <> "vslint" then
    fail "tool.driver.name is not vslint";
  let rules = as_list "rules" (member "rules" driver) in
  if List.length rules <> List.length Rules.all then
    fail "rule table has %d entries, expected %d (Rules.all)"
      (List.length rules) (List.length Rules.all);
  List.iter
    (fun r ->
      let id = as_string "rule id" (member "id" r) in
      if Rules.find id = None then fail "rule %S is not in Rules.all" id;
      ignore (member "text" (member "shortDescription" r));
      ignore (member "text" (member "fullDescription" r));
      ignore (member "text" (member "help" r));
      let level =
        as_string "rule level" (member "level" (member "defaultConfiguration" r))
      in
      if level <> "error" && level <> "warning" then
        fail "rule %s has bad level %S" id level)
    rules;
  let results = as_list "results" (member "results" run) in
  if List.length results <> List.length synthetic_findings then
    fail "expected %d results, got %d"
      (List.length synthetic_findings)
      (List.length results);
  List.iter
    (fun r ->
      let id = as_string "ruleId" (member "ruleId" r) in
      if Rules.find id = None then fail "result names unknown rule %S" id;
      ignore (member "text" (member "message" r));
      let locs = as_list "locations" (member "locations" r) in
      let loc = match locs with [ l ] -> l | _ -> fail "result must have 1 location" in
      let phys = member "physicalLocation" loc in
      ignore (as_string "uri" (member "uri" (member "artifactLocation" phys)));
      let region = member "region" phys in
      let pos name =
        match Json.to_int_opt (member name region) with
        | Some n when n >= 1 -> n
        | Some n -> fail "%s = %d is not 1-based" name n
        | None -> fail "%s is not an int" name
      in
      ignore (pos "startLine");
      ignore (pos "startColumn"))
    results

let () =
  match Array.to_list Sys.argv with
  | [ _; "--write"; path ] ->
      let oc = open_out_bin path in
      output_string oc emitted;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length emitted)
  | [ _; sample_path ] ->
      let sample = read_file sample_path in
      if not (String.equal sample emitted) then
        fail
          "emitter output drifted from the committed sample %s; if the \
           change is intentional, regenerate with --write"
          sample_path;
      validate sample;
      print_endline "sarif-schema: sample is byte-identical and structurally valid"
  | _ ->
      prerr_endline
        "usage: sarif_schema_check (SAMPLE | --write SAMPLE)";
      exit 2
