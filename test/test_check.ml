(* Tests for the schedule explorer stack (lib/check) and for the oracle
   checkers under mutated recordings of real runs.

   - explorer smoke: a fixed small seed set swept on every build, so tier-1
     exercises the whole campaign/driver/checker path;
   - replay determinism: the same spec always produces the same outcome;
   - repro artifacts: exact s-expression round-trips, error reporting;
   - shrinker: synthetic failure predicates (structural and run-derived)
     minimize to strictly smaller specs that still fail;
   - oracle mutations: recordings of a genuine run, deliberately corrupted
     (dropped delivery, cross-view duplicate, spurious message), make the
     corresponding checker fire — the checkers provably can detect bugs;
   - corpus replay: every checked-in repro artifact under test/corpus/
     parses and runs clean (a minimized schedule that once found a bug can
     never silently regress). *)

module Sim = Vs_sim.Sim
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Faults = Vs_harness.Faults
module Oracle = Vs_harness.Oracle
module Driver = Vs_harness.Driver
module Vc = Vs_harness.Vsync_cluster
module Campaign = Vs_check.Campaign
module Explorer = Vs_check.Explorer
module Shrink = Vs_check.Shrink
module Repro = Vs_check.Repro

let check = Alcotest.check

let p n = Proc_id.initial n

(* ---------- explorer smoke: the CI seed budget ---------- *)

let test_explorer_smoke () =
  let failures = ref [] in
  let report =
    Explorer.explore ~seeds:25 ~nodes:4 ~quick:true
      ~progress:(fun ~seed spec outcome ->
        if outcome.Campaign.violations <> [] then
          failures := (seed, spec, outcome) :: !failures)
      ()
  in
  List.iter
    (fun (seed, spec, (outcome : Campaign.outcome)) ->
      Printf.printf "seed %d (%s):\n" seed (Campaign.describe spec);
      List.iter print_endline outcome.Campaign.violations)
    !failures;
  check Alcotest.int "campaigns = seeds x protocols" 50
    report.Explorer.campaigns;
  check Alcotest.int "no violations over the smoke seed set" 0
    (List.length report.Explorer.failures);
  check Alcotest.bool "the sweep actually delivered traffic" true
    (report.Explorer.total_deliveries > 0
    && report.Explorer.total_installs > 0)

(* ---------- replay determinism ---------- *)

let outcomes_equal (a : Campaign.outcome) (b : Campaign.outcome) =
  a.Campaign.violations = b.Campaign.violations
  && a.Campaign.deliveries = b.Campaign.deliveries
  && a.Campaign.installs = b.Campaign.installs
  && a.Campaign.distinct_views = b.Campaign.distinct_views
  && a.Campaign.eview_changes = b.Campaign.eview_changes
  && a.Campaign.events = b.Campaign.events
  && a.Campaign.stable = b.Campaign.stable

let test_replay_deterministic () =
  List.iter
    (fun protocol ->
      let spec = Campaign.generate ~protocol ~seed:7 ~nodes:4 ~quick:true () in
      let o1 = Campaign.run spec in
      let o2 = Campaign.run spec in
      check Alcotest.bool
        ("identical outcomes (" ^ Driver.protocol_to_string protocol ^ ")")
        true (outcomes_equal o1 o2);
      check Alcotest.bool "the run did something" true
        (o1.Campaign.events > 0 && o1.Campaign.deliveries > 0))
    [ Driver.Vsync; Driver.Evs ]

let test_replay_from_artifact_deterministic () =
  (* Through the serialized form too: parse . print = identity run. *)
  let spec = Campaign.generate ~seed:13 ~nodes:4 ~quick:true () in
  match Repro.of_string (Repro.to_string spec) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok spec' ->
      check Alcotest.bool "parsed spec equals original" true
        (Campaign.equal_spec spec spec');
      check Alcotest.bool "identical outcomes" true
        (outcomes_equal (Campaign.run spec) (Campaign.run spec'))

(* ---------- repro artifacts ---------- *)

let roundtrip_property =
  QCheck.Test.make ~name:"repro artifacts round-trip exactly" ~count:50
    QCheck.(
      make
        Gen.(
          map2
            (fun seed nodes -> (seed, 2 + nodes))
            (int_bound 100_000) (int_bound 6)))
    (fun (seed, nodes) ->
      let spec = Campaign.generate ~seed ~nodes ~quick:false () in
      match Repro.of_string (Repro.to_string spec) with
      | Ok spec' -> Campaign.equal_spec spec spec'
      | Error _ -> false)

let test_repro_errors () =
  let bad text =
    match Repro.of_string text with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "empty input rejected" true (bad "");
  check Alcotest.bool "unclosed paren rejected" true (bad "((seed 1)");
  check Alcotest.bool "missing fields rejected" true (bad "((seed 1))");
  check Alcotest.bool "bad action rejected" true
    (bad
       "((seed 1) (protocol vsync) (nodes 2) (loss 0) (dup 0) (delay-min \
        0.001) (delay-max 0.01) (traffic-gap 0) (traffic-until 1) (horizon 2) \
        (script ((1 (explode 3)))))")

(* ---------- shrinker ---------- *)

(* A deterministic structural failure: the script still crashes node 1.
   The shrinker must strip everything else — all other actions, the spare
   nodes, every fault knob — while preserving the predicate. *)
let test_shrink_structural () =
  let has_crash_1 spec =
    List.exists (fun (_, a) -> a = Faults.Crash 1) spec.Campaign.script
  in
  let rec find_seed seed =
    if seed > 200 then Alcotest.fail "no seed with a crash of node 1?"
    else
      let spec = Campaign.generate ~seed ~nodes:5 ~quick:false () in
      if has_crash_1 spec && List.length spec.Campaign.script >= 5 then spec
      else find_seed (seed + 1)
  in
  let original = find_seed 1 in
  let shrunk, stats = Shrink.shrink ~failing:has_crash_1 original in
  check Alcotest.bool "still fails" true (has_crash_1 shrunk);
  check Alcotest.bool "strictly smaller" true
    (Campaign.weight shrunk < Campaign.weight original);
  check Alcotest.int "single action remains" 1
    (List.length shrunk.Campaign.script);
  check Alcotest.int "nodes reduced to 2" 2 shrunk.Campaign.nodes;
  check (Alcotest.float 1e-9) "loss knob off" 0.
    shrunk.Campaign.knobs.Campaign.loss_prob;
  check (Alcotest.float 1e-9) "traffic off" 0. shrunk.Campaign.traffic_gap;
  check Alcotest.bool "shrinking did some work" true
    (stats.Shrink.accepted > 0 && stats.Shrink.attempts >= stats.Shrink.accepted)

(* A run-derived failure: the campaign's outcome (from genuinely re-running
   each candidate) keeps showing at least three distinct views.  This is the
   mode the explorer uses on a real violation, where the predicate is
   "Oracle.check_all still reports something". *)
let test_shrink_run_derived () =
  let failing spec =
    spec.Campaign.nodes >= 2
    && (Campaign.run spec).Campaign.distinct_views >= 3
  in
  let original = Campaign.generate ~seed:3 ~nodes:4 ~quick:true () in
  if not (failing original) then
    Alcotest.fail "expected seed 3 to produce >= 3 distinct views";
  let shrunk, _stats = Shrink.shrink ~max_attempts:80 ~failing original in
  check Alcotest.bool "still fails after shrinking" true (failing shrunk);
  check Alcotest.bool "strictly smaller" true
    (Campaign.weight shrunk < Campaign.weight original)

(* ---------- oracle checkers under mutated real recordings ---------- *)

module Explain = Vs_obs.Explain
module Event = Vs_obs.Event
module Lineage = Vs_obs.Lineage

(* Render the explanations an oracle's structured verdicts produce.  The
   mutated recordings have no event stream, so the slices are empty — the
   point is that the violation itself names the property, the offending
   message and the views involved. *)
let explain_text violations =
  let lineage = Lineage.of_entries [] in
  String.concat ""
    (List.map
       (fun v ->
         Explain.to_text
           (Explain.explain ~lineage ~entries:[] (Oracle.to_obs_violation v)))
       violations)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let assert_mentions text parts =
  List.iter
    (fun part ->
      if not (contains text part) then
        Alcotest.failf "explanation does not mention %S:\n%s" part text)
    parts

let obs_mid m = Event.msg_to_string (Oracle.msg_id_to_obs m)

let obs_vid v = Event.vid_to_string (View.Id.to_obs v)

(* Drive a real, clean run: 3 nodes form a view, exchange FIFO traffic,
   then lose node 2 so a successor view exists (agreement compares the
   survivors' delivery sets across that view change). *)
let drive_clean_run () =
  let c = Vc.create ~seed:11L ~n:3 () in
  let sim = Vc.sim c in
  Vc.run c ~until:1.0;
  for i = 0 to 8 do
    ignore
      (Sim.at sim
         (1.0 +. (0.05 *. float_of_int i))
         (fun () -> Vc.multicast_from c ~node:(i mod 3) ()))
  done;
  Vc.run_script c [ (2.0, Faults.Crash 2) ];
  Vc.run c ~until:4.0;
  let o = Vc.oracle c in
  check (Alcotest.list Alcotest.string) "the genuine run is clean" []
    (Oracle.check_all o);
  check Alcotest.bool "it delivered traffic" true
    (Oracle.total_deliveries o > 0);
  c

(* Rebuild an oracle from another oracle's introspected recording,
   optionally dropping one delivery — the only corruption that cannot be
   expressed by appending to the original. *)
let rebuild_recording ?drop o procs =
  let o' = Oracle.create () in
  let mids =
    List.concat_map
      (fun proc -> List.map snd (Oracle.deliveries_of o ~proc))
      procs
    |> List.sort_uniq compare
  in
  List.iter (fun mid -> Oracle.record_send o' mid) mids;
  List.iter
    (fun proc ->
      let time = ref 0.0 in
      List.iter
        (fun (view, prior) ->
          time := !time +. 0.01;
          Oracle.record_install o' ~proc ~view ~prior ~time:!time)
        (Oracle.installs_of o ~proc);
      List.iter
        (fun (vid, mid) ->
          let dropped =
            match drop with
            | Some (dp, dmid) -> Proc_id.equal dp proc && dmid = mid
            | None -> false
          in
          if not dropped then begin
            time := !time +. 0.01;
            Oracle.record_delivery o' ~proc ~vid mid ~time:!time
          end)
        (Oracle.deliveries_of o ~proc))
    procs;
  o'

let procs_of o = List.map fst (Oracle.install_counts o)

let test_mutation_dropped_delivery_breaks_agreement () =
  let c = drive_clean_run () in
  let o = Vc.oracle c in
  let procs = procs_of o in
  (* Faithful rebuild stays clean: the harness introspection is lossless
     enough for the checkers. *)
  let faithful = rebuild_recording o procs in
  check (Alcotest.list Alcotest.string) "faithful rebuild is clean" []
    (Oracle.check_all faithful);
  (* Drop one delivery that the other survivor also made in the view both
     outlived: agreement (Property 2.1) must fire. *)
  let survivor = p 0 and witness = p 1 in
  let last_prior =
    match List.rev (Oracle.installs_of o ~proc:survivor) with
    | (_, prior) :: _ -> prior
    | [] -> Alcotest.fail "no installs recorded"
  in
  let shared_mid =
    let delivered_by proc =
      Oracle.deliveries_of o ~proc
      |> List.filter_map (fun (vid, mid) ->
             if View.Id.equal vid last_prior then Some mid else None)
    in
    match
      List.filter
        (fun mid -> List.mem mid (delivered_by witness))
        (delivered_by survivor)
    with
    | mid :: _ -> mid
    | [] -> Alcotest.fail "no shared delivery in the pre-crash view"
  in
  let corrupted = rebuild_recording ~drop:(survivor, shared_mid) o procs in
  let violations = Oracle.agreement_violations corrupted in
  check Alcotest.bool "agreement fires on the dropped delivery" true
    (violations <> []);
  (* The explanation names the property, the missing message and the view
     the survivors shared. *)
  assert_mentions (explain_text violations)
    [
      "violated: agreement (Property 2.1)";
      "message: " ^ obs_mid shared_mid;
      obs_vid last_prior;
    ]

let test_mutation_cross_view_duplicate_breaks_uniqueness () =
  let c = drive_clean_run () in
  let o = Vc.oracle c in
  (* Re-deliver a genuinely delivered message in a different view. *)
  let proc = p 0 in
  let vid, mid =
    match Oracle.deliveries_of o ~proc with
    | d :: _ -> d
    | [] -> Alcotest.fail "no deliveries"
  in
  let other_vid = View.Id.make ~epoch:99 ~proposer:(p 1) in
  assert (not (View.Id.equal vid other_vid));
  Oracle.record_delivery o ~proc:(p 1) ~vid:other_vid mid ~time:9.9;
  let violations = Oracle.uniqueness_violations o in
  check Alcotest.bool "uniqueness fires on the cross-view duplicate" true
    (violations <> []);
  assert_mentions (explain_text violations)
    [
      "violated: uniqueness (Property 2.2)";
      "message: " ^ obs_mid mid;
      obs_vid vid;
      obs_vid other_vid;
    ]

let test_mutation_spurious_message_breaks_integrity () =
  let c = drive_clean_run () in
  let o = Vc.oracle c in
  (* Deliver a message nobody ever multicast. *)
  let phantom = { Oracle.m_sender = p 9; m_index = 42 } in
  let vid = View.Id.make ~epoch:1 ~proposer:(p 0) in
  Oracle.record_delivery o ~proc:(p 0) ~vid phantom ~time:9.9;
  let violations = Oracle.integrity_violations o in
  check Alcotest.bool "integrity fires on the spurious message" true
    (violations <> []);
  assert_mentions (explain_text violations)
    [
      "violated: integrity (Property 2.3)";
      "message: " ^ obs_mid phantom;
      "processes: " ^ Event.proc_to_string (Proc_id.to_obs (p 0));
      obs_vid vid;
    ]

let test_mutation_inverted_delivery_breaks_fifo () =
  let c = drive_clean_run () in
  let o = Vc.oracle c in
  (* Append an inversion: a fresh sender's messages delivered out of
     multicast order at one process. *)
  let m0 = { Oracle.m_sender = p 7; m_index = 0 } in
  let m1 = { Oracle.m_sender = p 7; m_index = 1 } in
  Oracle.record_send o m0;
  Oracle.record_send o m1;
  let vid = View.Id.make ~epoch:1 ~proposer:(p 0) in
  Oracle.record_delivery o ~proc:(p 0) ~vid m1 ~time:9.8;
  Oracle.record_delivery o ~proc:(p 0) ~vid m0 ~time:9.9;
  let violations = Oracle.fifo_violations o in
  check Alcotest.bool "fifo fires on the inversion" true (violations <> []);
  assert_mentions (explain_text violations)
    [ "violated: per-sender fifo order"; "message: "; obs_vid vid ]

(* ---------- batching on/off equivalence ---------- *)

module Endpoint = Vs_vsync.Endpoint

(* The batched wire format is an encoding change, not a semantic one: the
   same seeded run — same traffic schedule, same crash — must produce the
   same oracle verdicts and the same per-process delivery sequence whether
   payloads ship one per wire message or grouped into Wire.Batch rounds.
   View identifiers may differ (batching shifts data-plane timing), so the
   comparison is over message identities, which the cluster assigns
   independently of the wire. *)
let equivalence_run ~config =
  let c = Vc.create ~seed:4242L ~config ~n:4 () in
  let sim = Vc.sim c in
  Vc.run c ~until:1.0;
  for i = 0 to 29 do
    ignore
      (Sim.at sim
         (1.0 +. (0.02 *. float_of_int i))
         (fun () ->
           let node = i mod 4 in
           let order =
             if i mod 3 = 0 then Endpoint.Total else Endpoint.Fifo
           in
           Vc.multicast_from c ~node ~order ()))
  done;
  Vc.run_script c [ (2.0, Faults.Crash 3) ];
  Vc.run c ~until:5.0;
  c

let test_batching_equivalence () =
  let base =
    {
      Endpoint.default_config with
      Endpoint.stability_interval = Some 0.05;
      batch_max = 32;
      pipeline_depth = 4;
    }
  in
  let c_off = equivalence_run ~config:base in
  let c_on = equivalence_run ~config:{ base with Endpoint.batching = true } in
  let o_off = Vc.oracle c_off and o_on = Vc.oracle c_on in
  check (Alcotest.list Alcotest.string) "identical oracle verdicts"
    (Oracle.check_all o_off) (Oracle.check_all o_on);
  check (Alcotest.list Alcotest.string) "and both clean" []
    (Oracle.check_all o_on);
  List.iter
    (fun node ->
      let proc = p node in
      let seq o =
        List.map
          (fun (_, m) -> Oracle.msg_id_to_string m)
          (Oracle.deliveries_of o ~proc)
      in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "node %d: identical delivery sequence" node)
        (seq o_off) (seq o_on))
    [ 0; 1; 2; 3 ];
  check Alcotest.bool "unbatched arm sent no batches" true
    ((Vc.stats_total c_off).Endpoint.batches_sent = 0);
  check Alcotest.bool "batched arm sent batches" true
    ((Vc.stats_total c_on).Endpoint.batches_sent > 0)


(* ---------- stabilization oracle under injected corruption ---------- *)

(* One named corruption per kind, each targeting a distinct endpoint field
   (Endpoint.corruption_field).  Every kind gets the same treatment: a
   stabilizing run must pass the oracle (recovery-window noise quarantined,
   nothing residual), and a mutated never-reconverging run must trip it
   with a structured violation naming the corrupted field. *)
let corruption_kinds =
  [
    Faults.Seq_skew 3;
    Faults.Stability_smear (1, 4);
    Faults.View_skew 2;
    Faults.Deps_truncate (1, 2);
  ]

let kind_field kind = Endpoint.corruption_field kind

(* A run that genuinely stabilizes: a formed view, traffic across the
   corruption, then the post-corruption kick (crash + recover) so fresh
   views are installed after the last fault and the quarantine window can
   close. *)
let stabilizing_run kind =
  let c = Vc.create ~seed:21L ~n:3 () in
  let sim = Vc.sim c in
  Vc.run c ~until:1.0;
  for i = 0 to 23 do
    ignore
      (Sim.at sim
         (1.0 +. (0.08 *. float_of_int i))
         (fun () -> Vc.multicast_from c ~node:(i mod 3) ()))
  done;
  Vc.run_script c
    [
      (2.0, Faults.Corrupt (0, kind));
      (2.3, Faults.Crash 1);
      (2.6, Faults.Recover 1);
    ];
  Vc.run c ~until:7.0;
  c

let test_stabilization_passes_stabilizing_runs () =
  List.iter
    (fun kind ->
      let label = Faults.corruption_to_string kind in
      let c = stabilizing_run kind in
      let o = Vc.oracle c in
      (match Oracle.corruptions o with
      | [ (_, field, time) ] ->
          check Alcotest.string
            (label ^ ": recorded corruption names the field")
            (kind_field kind) field;
          check Alcotest.bool (label ^ ": recorded at injection time") true
            (time >= 2.0 && time < 2.1)
      | l ->
          Alcotest.failf "%s: expected exactly one recorded corruption, got %d"
            label (List.length l));
      match Oracle.stabilization o (Oracle.all_violations o) with
      | None -> Alcotest.failf "%s: stabilization oracle did not arm" label
      | Some st ->
          List.iter
            (fun (v : Oracle.violation) ->
              Printf.printf "%s residual: %s\n" label v.Oracle.v_detail)
            st.Oracle.st_residual;
          check Alcotest.int (label ^ ": no residual violations") 0
            (List.length st.Oracle.st_residual);
          check Alcotest.bool (label ^ ": the kick installed fresh views")
            true (st.Oracle.st_views >= 2);
          check Alcotest.bool (label ^ ": the quarantine window closed") true
            (st.Oracle.st_cut <> None))
    corruption_kinds

let test_stabilization_trips_on_never_reconverging_runs () =
  List.iter
    (fun kind ->
      let label = Faults.corruption_to_string kind in
      let c = stabilizing_run kind in
      let o = Vc.oracle c in
      (* Mutate the recording into a never-reconverging run: a second
         corruption after every install the run ever made, then a phantom
         delivery (an integrity violation) inside the open window. *)
      Oracle.record_corruption o ~proc:(p 0) ~field:(kind_field kind)
        ~time:100.0;
      let phantom = { Oracle.m_sender = p 9; m_index = 77 } in
      Oracle.record_delivery o ~proc:(p 0)
        ~vid:(View.Id.make ~epoch:99 ~proposer:(p 1))
        phantom ~time:101.0;
      match Oracle.stabilization o (Oracle.all_violations o) with
      | None -> Alcotest.failf "%s: stabilization oracle did not arm" label
      | Some st ->
          check Alcotest.bool (label ^ ": window never closed") true
            (st.Oracle.st_cut = None);
          check Alcotest.bool (label ^ ": phantom delivery quarantined") true
            (st.Oracle.st_quarantined <> []);
          let v =
            match st.Oracle.st_residual with
            | v :: _ -> v
            | [] ->
                Alcotest.failf "%s: no residual violation synthesized" label
          in
          check Alcotest.bool (label ^ ": residual is a Stabilization verdict")
            true
            (v.Oracle.v_property = Explain.Stabilization);
          assert_mentions
            (explain_text [ v ])
            [
              "violated: stabilization";
              "never reconverged";
              kind_field kind ^ "@" ^ Vs_net.Proc_id.to_string (p 0);
            ])
    corruption_kinds

let test_stabilization_relabels_persistent_violations () =
  (* A violation confined to views installed past the bound is a real
     failure: relabeled Stabilization, detail naming the corrupted field. *)
  let kind = Faults.Seq_skew 3 in
  let c = stabilizing_run kind in
  let o = Vc.oracle c in
  let last_view =
    match List.rev (Oracle.installs_of o ~proc:(p 0)) with
    | (view, _) :: _ -> view
    | [] -> Alcotest.fail "no installs recorded"
  in
  let phantom = { Oracle.m_sender = p 9; m_index = 78 } in
  Oracle.record_delivery o ~proc:(p 0) ~vid:last_view.View.id phantom
    ~time:50.0;
  match Oracle.stabilization o ~bound:1 (Oracle.all_violations o) with
  | None -> Alcotest.fail "stabilization oracle did not arm"
  | Some st -> (
      match st.Oracle.st_residual with
      | [ v ] ->
          check Alcotest.bool "relabeled Stabilization" true
            (v.Oracle.v_property = Explain.Stabilization);
          assert_mentions
            (explain_text [ v ])
            [
              "violated: stabilization";
              "persists after the stabilization bound";
              "integrity";
              kind_field kind ^ "@" ^ Vs_net.Proc_id.to_string (p 0);
            ]
      | l ->
          Alcotest.failf "expected exactly one residual violation, got %d"
            (List.length l))

(* ---------- transient campaigns end-to-end ---------- *)

let find_transient_spec ?(protocol = Driver.Vsync) () =
  let rec go seed =
    if seed > 400 then Alcotest.fail "no transient campaign draws a corruption?"
    else
      let spec =
        Campaign.generate ~protocol ~transient:true ~seed ~nodes:4 ~quick:true
          ()
      in
      if
        List.exists
          (fun (_, a) -> match a with Faults.Corrupt _ -> true | _ -> false)
          spec.Campaign.script
      then spec
      else go (seed + 1)
  in
  go 1

let test_transient_campaign_is_judged_by_stabilization () =
  let spec = find_transient_spec () in
  let outcome = Campaign.run spec in
  List.iter print_endline outcome.Campaign.violations;
  check Alcotest.int "transient campaign is oracle-clean" 0
    (List.length outcome.Campaign.violations);
  match outcome.Campaign.quarantine with
  | None -> Alcotest.fail "no quarantine summary on a transient run"
  | Some q ->
      check Alcotest.int "default bound" 2 q.Driver.q_bound;
      check Alcotest.bool "the run reconverged" true (q.Driver.q_cut <> None)

let test_transient_axis_leaves_plain_campaigns_unchanged () =
  (* The transient axis must not perturb the RNG stream of existing
     campaigns: transient:false produces byte-identical specs. *)
  List.iter
    (fun seed ->
      let plain = Campaign.generate ~seed ~nodes:5 ~quick:false () in
      let explicit =
        Campaign.generate ~transient:false ~seed ~nodes:5 ~quick:false ()
      in
      check Alcotest.bool
        (Printf.sprintf "seed %d: specs identical" seed)
        true
        (Campaign.equal_spec plain explicit
        && Repro.to_string plain = Repro.to_string explicit))
    [ 1; 7; 42; 202 ]

let test_transient_explorer_smoke () =
  let report =
    Explorer.explore ~transient:true ~seeds:10 ~nodes:4 ~quick:true ()
  in
  List.iter
    (fun (f : Explorer.failure) ->
      Printf.printf "transient seed %d (%s):\n" f.Explorer.f_seed
        (Campaign.describe f.Explorer.f_spec);
      List.iter print_endline f.Explorer.f_outcome.Campaign.violations)
    report.Explorer.failures;
  check Alcotest.int "campaigns = seeds x protocols" 20
    report.Explorer.campaigns;
  check Alcotest.int "no violations over the transient smoke set" 0
    (List.length report.Explorer.failures)

(* ---------- transient x batching ---------- *)

let transient_equivalence_run ~config =
  let c = Vc.create ~seed:4242L ~config ~n:4 () in
  let sim = Vc.sim c in
  Vc.run c ~until:1.0;
  for i = 0 to 29 do
    ignore
      (Sim.at sim
         (1.0 +. (0.02 *. float_of_int i))
         (fun () ->
           let node = i mod 4 in
           let order =
             if i mod 3 = 0 then Endpoint.Total else Endpoint.Fifo
           in
           Vc.multicast_from c ~node ~order ()))
  done;
  Vc.run_script c
    [
      (1.3, Faults.Corrupt (0, Faults.Seq_skew 2));
      (2.0, Faults.Crash 3);
      (2.4, Faults.Recover 3);
    ];
  Vc.run c ~until:5.0;
  c

let test_transient_batching_equivalence () =
  (* Same seed, same corruption, batching on vs off: the stabilization
     oracle must reach the same verdict — both reconverge, neither leaves
     residual violations. *)
  let base =
    {
      Endpoint.default_config with
      Endpoint.stability_interval = Some 0.05;
      batch_max = 32;
      pipeline_depth = 4;
    }
  in
  let verdict config =
    let c = transient_equivalence_run ~config in
    let o = Vc.oracle c in
    match Oracle.stabilization o (Oracle.all_violations o) with
    | None -> Alcotest.fail "stabilization oracle did not arm"
    | Some st ->
        ( List.map (fun (v : Oracle.violation) -> v.Oracle.v_detail)
            st.Oracle.st_residual,
          st.Oracle.st_cut <> None )
  in
  let residual_off, closed_off = verdict base in
  let residual_on, closed_on =
    verdict { base with Endpoint.batching = true }
  in
  check (Alcotest.list Alcotest.string) "identical residual verdicts"
    residual_off residual_on;
  check (Alcotest.list Alcotest.string) "and both clean" [] residual_on;
  check Alcotest.bool "both windows closed" true (closed_off && closed_on)

(* ---------- corpus replay ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_corpus_replays_clean () =
  let entries = Repro.load_dir "corpus" in
  check Alcotest.bool "corpus is not empty" true (entries <> []);
  check Alcotest.bool "corpus has a transient artifact" true
    (List.exists
       (fun (_, parsed) ->
         match parsed with
         | Ok spec -> spec.Campaign.transient
         | Error _ -> false)
       entries);
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error msg -> Alcotest.failf "%s does not parse: %s" path msg
      | Ok spec ->
          (* The printed form must parse back to the same spec (the corpus
             survives format evolution), and machine-written artifacts —
             the transient one is — must be byte-stable under a
             parse/print round-trip. *)
          (match Repro.of_string (Repro.to_string spec) with
          | Ok spec' ->
              check Alcotest.bool (path ^ ": round-trips") true
                (Campaign.equal_spec spec spec')
          | Error msg -> Alcotest.failf "%s: reprint fails: %s" path msg);
          if spec.Campaign.transient then
            check Alcotest.string (path ^ ": byte-identical reprint")
              (read_file path) (Repro.to_string spec);
          let outcome = Campaign.run spec in
          if outcome.Campaign.violations <> [] then begin
            Printf.printf "%s (%s):\n" path (Campaign.describe spec);
            List.iter print_endline outcome.Campaign.violations;
            Alcotest.failf "%s regressed: %d violation(s)" path
              (List.length outcome.Campaign.violations)
          end)
    entries

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "vs_check"
    [
      ( "explorer",
        [
          Alcotest.test_case "25-seed smoke sweep is clean" `Quick
            test_explorer_smoke;
        ] );
      ( "replay",
        [
          Alcotest.test_case "same spec, same outcome" `Quick
            test_replay_deterministic;
          Alcotest.test_case "through the artifact form" `Quick
            test_replay_from_artifact_deterministic;
        ] );
      ( "repro",
        [
          qt roundtrip_property;
          Alcotest.test_case "parse errors are reported" `Quick
            test_repro_errors;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "structural predicate minimizes" `Quick
            test_shrink_structural;
          Alcotest.test_case "run-derived predicate minimizes" `Quick
            test_shrink_run_derived;
        ] );
      ( "oracle-mutations",
        [
          Alcotest.test_case "dropped delivery -> agreement" `Quick
            test_mutation_dropped_delivery_breaks_agreement;
          Alcotest.test_case "cross-view duplicate -> uniqueness" `Quick
            test_mutation_cross_view_duplicate_breaks_uniqueness;
          Alcotest.test_case "spurious message -> integrity" `Quick
            test_mutation_spurious_message_breaks_integrity;
          Alcotest.test_case "inverted delivery -> fifo" `Quick
            test_mutation_inverted_delivery_breaks_fifo;
        ] );
      ( "batching",
        [
          Alcotest.test_case "on/off wire equivalence" `Quick
            test_batching_equivalence;
          Alcotest.test_case "on/off equivalence under corruption" `Quick
            test_transient_batching_equivalence;
        ] );
      ( "stabilization",
        [
          Alcotest.test_case "stabilizing runs pass, per corruption kind"
            `Quick test_stabilization_passes_stabilizing_runs;
          Alcotest.test_case "never-reconverging runs trip, per kind" `Quick
            test_stabilization_trips_on_never_reconverging_runs;
          Alcotest.test_case "persistent violations are relabeled" `Quick
            test_stabilization_relabels_persistent_violations;
          Alcotest.test_case "transient campaign judged by the oracle" `Quick
            test_transient_campaign_is_judged_by_stabilization;
          Alcotest.test_case "plain campaigns byte-identical" `Quick
            test_transient_axis_leaves_plain_campaigns_unchanged;
          Alcotest.test_case "10-seed transient smoke sweep is clean" `Quick
            test_transient_explorer_smoke;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "every artifact replays clean" `Quick
            test_corpus_replays_clean;
        ] );
    ]
