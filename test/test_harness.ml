(* Tests for the harness itself: the oracle checkers must detect seeded
   violations (a checker that cannot fail proves nothing), the fault-script
   generator must produce well-formed campaigns, and the statistics
   utilities must be correct. *)

module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults
module Table = Vs_stats.Table
module Summary = Vs_stats.Summary

let check = Alcotest.check

let p n = Proc_id.initial n
let vid e = View.Id.make ~epoch:e ~proposer:(p 0)
let mid sender index = { Oracle.m_sender = p sender; m_index = index }

(* ---------- oracle detects violations ---------- *)

let test_oracle_clean_run () =
  let o = Oracle.create () in
  let v1 = vid 1 and v2 = vid 2 in
  Oracle.record_send o (mid 0 0);
  List.iter
    (fun q ->
      Oracle.record_install o ~proc:(p q) ~view:(View.make v1 [ p 0; p 1 ])
        ~prior:(View.Id.initial (p q)) ~time:0.1;
      Oracle.record_delivery o ~proc:(p q) ~vid:v1 (mid 0 0) ~time:0.2;
      Oracle.record_install o ~proc:(p q) ~view:(View.make v2 [ p 0; p 1 ])
        ~prior:v1 ~time:0.3)
    [ 0; 1 ];
  check (Alcotest.list Alcotest.string) "clean" [] (Oracle.check_all o);
  check Alcotest.int "counts installs" 4 (Oracle.total_installs o);
  check Alcotest.int "counts deliveries" 2 (Oracle.total_deliveries o);
  check Alcotest.int "distinct views" 2 (Oracle.distinct_views o)

let test_oracle_detects_agreement_violation () =
  let o = Oracle.create () in
  let v1 = vid 1 and v2 = vid 2 in
  Oracle.record_send o (mid 0 0);
  (* Both survive v1 -> v2 but only p0 delivered the message in v1. *)
  List.iter
    (fun q ->
      Oracle.record_install o ~proc:(p q) ~view:(View.make v1 [ p 0; p 1 ])
        ~prior:(View.Id.initial (p q)) ~time:0.1)
    [ 0; 1 ];
  Oracle.record_delivery o ~proc:(p 0) ~vid:v1 (mid 0 0) ~time:0.2;
  List.iter
    (fun q ->
      Oracle.record_install o ~proc:(p q) ~view:(View.make v2 [ p 0; p 1 ])
        ~prior:v1 ~time:0.3)
    [ 0; 1 ];
  check Alcotest.bool "agreement violation detected" true
    (Oracle.check_agreement o <> [])

let test_oracle_detects_uniqueness_violation () =
  let o = Oracle.create () in
  Oracle.record_send o (mid 0 0);
  Oracle.record_delivery o ~proc:(p 0) ~vid:(vid 1) (mid 0 0) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 1) ~vid:(vid 2) (mid 0 0) ~time:0.2;
  check Alcotest.bool "uniqueness violation detected" true
    (Oracle.check_uniqueness o <> [])

let test_oracle_detects_integrity_violations () =
  let o = Oracle.create () in
  Oracle.record_send o (mid 0 0);
  (* Duplicate delivery. *)
  Oracle.record_delivery o ~proc:(p 0) ~vid:(vid 1) (mid 0 0) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 0) ~vid:(vid 1) (mid 0 0) ~time:0.2;
  (* Phantom: never sent. *)
  Oracle.record_delivery o ~proc:(p 0) ~vid:(vid 1) (mid 9 3) ~time:0.3;
  let errs = Oracle.check_integrity o in
  check Alcotest.bool "duplicate detected" true
    (List.exists (fun e -> String.length e > 0 && String.sub e 0 9 = "integrity") errs);
  check Alcotest.int "two violations" 2 (List.length errs)

let test_oracle_detects_fifo_violation () =
  let o = Oracle.create () in
  Oracle.record_send o (mid 0 0);
  Oracle.record_send o (mid 0 1);
  Oracle.record_delivery o ~proc:(p 1) ~vid:(vid 1) (mid 0 1) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 1) ~vid:(vid 1) (mid 0 0) ~time:0.2;
  check Alcotest.bool "fifo inversion detected" true (Oracle.check_fifo o <> [])

let test_oracle_fifo_exempts_total_order () =
  let o = Oracle.create () in
  Oracle.record_send o ~order:`Total (mid 0 0);
  Oracle.record_send o (mid 0 1);
  (* The totally-ordered message may arrive after a later FIFO one. *)
  Oracle.record_delivery o ~proc:(p 1) ~vid:(vid 1) (mid 0 1) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 1) ~vid:(vid 1) (mid 0 0) ~time:0.2;
  check (Alcotest.list Alcotest.string) "no false positive" []
    (Oracle.check_fifo o)

let test_oracle_detects_total_order_violation () =
  let o = Oracle.create () in
  Oracle.record_send o ~order:`Total (mid 0 0);
  Oracle.record_send o ~order:`Total (mid 1 0);
  (* p2 and p3 deliver the two totally-ordered messages in opposite
     orders within one view. *)
  Oracle.record_delivery o ~proc:(p 2) ~vid:(vid 1) (mid 0 0) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 2) ~vid:(vid 1) (mid 1 0) ~time:0.2;
  Oracle.record_delivery o ~proc:(p 3) ~vid:(vid 1) (mid 1 0) ~time:0.1;
  Oracle.record_delivery o ~proc:(p 3) ~vid:(vid 1) (mid 0 0) ~time:0.2;
  check Alcotest.bool "total-order violation detected" true
    (Oracle.check_total_order_messages o <> [])

(* ---------- fault scripts ---------- *)

let script_gen =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun seed n -> (Int64.of_int seed, 2 + n))
        (int_bound 100_000) (int_bound 6))

let script_property name f =
  QCheck.Test.make ~name ~count:100 script_gen (fun (seed, n) ->
      let rng = Vs_util.Rng.create seed in
      let nodes = List.init n (fun i -> i) in
      let script =
        Faults.random_script rng ~nodes ~start:1.0 ~duration:5.0 ~mean_gap:0.3 ()
      in
      f nodes script)

let scripts_sorted =
  script_property "scripts are time-ordered" (fun _nodes script ->
      let times = List.map fst script in
      let rec nondecreasing = function
        | a :: b :: rest -> a <= b && nondecreasing (b :: rest)
        | _ -> true
      in
      nondecreasing times)

let scripts_keep_someone_alive =
  script_property "scripts never kill the whole universe" (fun nodes script ->
      let down = Hashtbl.create 8 in
      List.for_all
        (fun (_, action) ->
          (match action with
          | Faults.Crash node -> Hashtbl.replace down node ()
          | Faults.Recover node -> Hashtbl.remove down node
          | Faults.Partition _ | Faults.Heal | Faults.Corrupt _ -> ());
          Hashtbl.length down < List.length nodes)
        script)

let scripts_end_recovered =
  script_property "scripts end healed and fully recovered" (fun _nodes script ->
      let down = Hashtbl.create 8 in
      let partitioned = ref false in
      List.iter
        (fun (_, action) ->
          match action with
          | Faults.Crash node -> Hashtbl.replace down node ()
          | Faults.Recover node -> Hashtbl.remove down node
          | Faults.Partition _ -> partitioned := true
          | Faults.Heal -> partitioned := false
          | Faults.Corrupt _ -> ())
        script;
      Hashtbl.length down = 0 && not !partitioned)

let scripts_respect_window =
  script_property "scripts respect the start/duration window"
    (fun _nodes script ->
      (* Churn stays inside [start, start + duration); the closing heal +
         recoveries land at the deadline (within a short fixed tail). *)
      let start = 1.0 and duration = 5.0 in
      let deadline = start +. duration in
      List.for_all
        (fun (time, action) ->
          match action with
          | Faults.Heal | Faults.Recover _ ->
              time >= start && time <= deadline +. 0.5
          | Faults.Crash _ | Faults.Partition _ | Faults.Corrupt _ ->
              time >= start && time < deadline)
        script)

let scripts_valid_actions =
  script_property "crash only up nodes, recover only down ones"
    (fun _nodes script ->
      let down = Hashtbl.create 8 in
      List.for_all
        (fun (_, action) ->
          match action with
          | Faults.Crash node ->
              let ok = not (Hashtbl.mem down node) in
              Hashtbl.replace down node ();
              ok
          | Faults.Recover node ->
              let ok = Hashtbl.mem down node in
              Hashtbl.remove down node;
              ok
          | Faults.Partition comps -> List.for_all (fun c -> c <> []) comps
          | Faults.Heal -> true
          | Faults.Corrupt _ -> true)
        script)


(* ---------- transient (corruption-carrying) fault scripts ---------- *)

let transient_script ?(corrupt_weight = 1.2) seed n =
  let rng = Vs_util.Rng.create seed in
  let nodes = List.init n (fun i -> i) in
  ( nodes,
    Faults.random_script rng ~nodes ~start:1.0 ~duration:5.0 ~mean_gap:0.3
      ~corrupt_weight () )

let transient_script_property name f =
  QCheck.Test.make ~name ~count:100 script_gen (fun (seed, n) ->
      let nodes, script = transient_script seed n in
      f nodes script)

let transient_scripts_end_recovered =
  transient_script_property
    "transient scripts end healed and fully recovered"
    (fun _nodes script ->
      let down = Hashtbl.create 8 in
      let partitioned = ref false in
      List.iter
        (fun (_, action) ->
          match action with
          | Faults.Crash node -> Hashtbl.replace down node ()
          | Faults.Recover node -> Hashtbl.remove down node
          | Faults.Partition _ -> partitioned := true
          | Faults.Heal -> partitioned := false
          | Faults.Corrupt _ -> ())
        script;
      Hashtbl.length down = 0 && not !partitioned)

let transient_scripts_keep_someone_alive =
  transient_script_property
    "transient scripts never kill the whole universe"
    (fun nodes script ->
      let down = Hashtbl.create 8 in
      List.for_all
        (fun (_, action) ->
          (match action with
          | Faults.Crash node -> Hashtbl.replace down node ()
          | Faults.Recover node -> Hashtbl.remove down node
          | Faults.Partition _ | Faults.Heal | Faults.Corrupt _ -> ());
          Hashtbl.length down < List.length nodes)
        script)

let transient_scripts_target_live_nodes =
  transient_script_property
    "corruptions only target nodes alive at injection time"
    (fun _nodes script ->
      let down = Hashtbl.create 8 in
      let up node = not (Hashtbl.mem down node) in
      List.for_all
        (fun (_, action) ->
          match action with
          | Faults.Crash node ->
              Hashtbl.replace down node ();
              true
          | Faults.Recover node ->
              Hashtbl.remove down node;
              true
          | Faults.Partition _ | Faults.Heal -> true
          | Faults.Corrupt (node, kind) ->
              (* Both the corrupted node and any auxiliary node the kind
                 parameterizes over (smear source, truncated sender) are
                 drawn from the alive set. *)
              up node
              &&
              (match kind with
              | Faults.Stability_smear (m, _) | Faults.Deps_truncate (m, _) ->
                  up m
              | Faults.Seq_skew _ | Faults.View_skew _ -> true))
        script)

let transient_scripts_respect_window =
  transient_script_property
    "transient scripts keep churn in-window with a short closing tail"
    (fun _nodes script ->
      (* Corruptions stay inside the churn window; after the deadline only
         the closing heal + recoveries and the post-corruption kick (one
         crash/recover pair) may appear, all within a fixed short tail. *)
      let start = 1.0 and duration = 5.0 in
      let deadline = start +. duration in
      List.for_all
        (fun (time, action) ->
          match action with
          | Faults.Heal | Faults.Recover _ ->
              time >= start && time <= deadline +. 0.5
          | Faults.Crash _ ->
              time >= start
              && (time < deadline
                 || (time > deadline && time <= deadline +. 0.5))
          | Faults.Partition _ | Faults.Corrupt _ ->
              time >= start && time < deadline)
        script)

let zero_weight_matches_default =
  QCheck.Test.make ~name:"corrupt_weight 0 leaves scripts byte-identical"
    ~count:100 script_gen (fun (seed, n) ->
      let rng = Vs_util.Rng.create seed in
      let nodes = List.init n (fun i -> i) in
      let plain =
        Faults.random_script rng ~nodes ~start:1.0 ~duration:5.0 ~mean_gap:0.3
          ()
      in
      let _, explicit = transient_script ~corrupt_weight:0.0 seed n in
      plain = explicit)

(* ---------- stats ---------- *)

let test_table_rendering () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta-long"; "22" ];
  let s = Table.to_string t in
  check Alcotest.bool "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  check Alcotest.bool "row present" true
    (String.length s > 0
    && List.exists
         (fun line -> line = "beta-long  22")
         (String.split_on_char '\n' s));
  check Alcotest.bool "wrong arity refused" true
    (try Table.add_row t [ "only-one" ]; false with Invalid_argument _ -> true)

let test_table_format_helpers () =
  check Alcotest.string "fint" "42" (Table.fint 42);
  check Alcotest.string "ffloat" "3.14" (Table.ffloat ~decimals:2 3.14159);
  check Alcotest.string "fpct" "12.5%" (Table.fpct 0.125);
  check Alcotest.string "fbool" "yes" (Table.fbool true)

let test_summary () =
  let s = Summary.of_list [ 4.; 1.; 3.; 2. ] in
  check Alcotest.int "count" 4 (Summary.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1. (Summary.min_value s);
  check (Alcotest.float 1e-9) "max" 4. (Summary.max_value s);
  check (Alcotest.float 1e-9) "median" 2. (Summary.percentile s 0.5);
  check (Alcotest.float 1e-9) "p100" 4. (Summary.percentile s 1.0);
  check Alcotest.bool "stddev positive" true (Summary.stddev s > 0.);
  let empty = Summary.create () in
  check (Alcotest.float 1e-9) "empty mean" 0. (Summary.mean empty);
  check (Alcotest.float 1e-9) "empty percentile" 0. (Summary.percentile empty 0.5)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "vs_harness"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean run" `Quick test_oracle_clean_run;
          Alcotest.test_case "detects agreement violation" `Quick
            test_oracle_detects_agreement_violation;
          Alcotest.test_case "detects uniqueness violation" `Quick
            test_oracle_detects_uniqueness_violation;
          Alcotest.test_case "detects integrity violations" `Quick
            test_oracle_detects_integrity_violations;
          Alcotest.test_case "detects fifo violation" `Quick
            test_oracle_detects_fifo_violation;
          Alcotest.test_case "fifo exempts total order" `Quick
            test_oracle_fifo_exempts_total_order;
          Alcotest.test_case "detects total-order violation" `Quick
            test_oracle_detects_total_order_violation;
        ] );
      ( "faults",
        [
          qt scripts_sorted;
          qt scripts_keep_someone_alive;
          qt scripts_end_recovered;
          qt scripts_respect_window;
          qt scripts_valid_actions;
          qt transient_scripts_end_recovered;
          qt transient_scripts_keep_someone_alive;
          qt transient_scripts_target_live_nodes;
          qt transient_scripts_respect_window;
          qt zero_weight_matches_default;
        ] );
      ( "stats",
        [
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "format helpers" `Quick test_table_format_helpers;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
    ]
