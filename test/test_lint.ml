(* vslint fixture tests: every bad fixture trips exactly its rule with
   span-accurate findings, every good fixture (including justified
   suppressions) passes clean — plus the determinism regression the linter
   exists to protect: two identically-seeded cluster runs must produce
   byte-identical traces. *)

module Lint = Vs_lint.Lint
module Rules = Vs_lint.Rules
module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Faults = Vs_harness.Faults
module Vc = Vs_harness.Vsync_cluster

let check = Alcotest.check

(* dune runtest runs in _build/default/test; dune exec from the root. *)
let fixture name =
  let local = Filename.concat "lint_fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat "test" local

let finding_rules (r : Lint.report) =
  List.map (fun (f : Lint.finding) -> f.Lint.rule.Rules.id) r.Lint.findings

let finding_lines (r : Lint.report) =
  List.map (fun (f : Lint.finding) -> f.Lint.line) r.Lint.findings

(* ---------- bad fixtures: exactly their own rule, at the right lines ---------- *)

let test_bad ~file ~rules ~lines () =
  let r = Lint.lint_file (fixture file) in
  check (Alcotest.list Alcotest.string) (file ^ ": rules") rules
    (finding_rules r);
  check (Alcotest.list Alcotest.int) (file ^ ": lines") lines (finding_lines r);
  check Alcotest.int (file ^ ": nothing suppressed") 0
    (List.length r.Lint.suppressed)

let test_d5_bad_cols () =
  (* Span accuracy down to the column, on the D5 fixture. *)
  let r = Lint.lint_file (fixture "d5_bad.ml") in
  check (Alcotest.list Alcotest.int) "d5 columns" [ 32; 18 ]
    (List.map (fun (f : Lint.finding) -> f.Lint.col) r.Lint.findings)

(* ---------- good fixtures: clean ---------- *)

let test_good ~file () =
  let r = Lint.lint_file (fixture file) in
  check (Alcotest.list Alcotest.string) (file ^ ": clean") [] (finding_rules r)

let test_suppressed_fixture () =
  let r = Lint.lint_file (fixture "d2_suppressed.ml") in
  check (Alcotest.list Alcotest.string) "no findings" [] (finding_rules r);
  check (Alcotest.list Alcotest.string) "one justified suppression" [ "D2" ]
    (List.map
       (fun (f : Lint.finding) -> f.Lint.rule.Rules.id)
       r.Lint.suppressed)

(* ---------- suppression semantics on inline sources ---------- *)

(* Assembled so vslint never reads this file's own text as a suppression. *)
let allow_comment id just = "(* vs" ^ "lint: allow " ^ id ^ " " ^ just ^ " *)"

let test_wrong_rule_does_not_suppress () =
  let source =
    allow_comment "D3" "— justified, but for another rule"
    ^ "\nlet keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  let r = Lint.lint_source ~path:"inline.ml" source in
  check (Alcotest.list Alcotest.string) "D2 still reported" [ "D2" ]
    (finding_rules r)

let test_same_line_suppression () =
  let source =
    "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] "
    ^ allow_comment "D2" "— commutative enough for a test"
    ^ "\n"
  in
  let r = Lint.lint_source ~path:"inline.ml" source in
  check (Alcotest.list Alcotest.string) "suppressed" [] (finding_rules r);
  check Alcotest.int "recorded" 1 (List.length r.Lint.suppressed)

let test_d1_exemptions () =
  let source = "let jitter () = Random.float 0.5\n" in
  let hit = Lint.lint_source ~path:"lib/vsync/endpoint.ml" source in
  check (Alcotest.list Alcotest.string) "protocol code: D1" [ "D1" ]
    (finding_rules hit);
  let sim = Lint.lint_source ~path:"lib/sim/sim.ml" source in
  check (Alcotest.list Alcotest.string) "lib/sim is exempt" []
    (finding_rules sim);
  let rng = Lint.lint_source ~path:"lib/util/rng.ml" source in
  check (Alcotest.list Alcotest.string) "util/rng.ml is exempt" []
    (finding_rules rng)

let test_unparseable_source () =
  let r = Lint.lint_source ~path:"broken.ml" "let let let = = =\n" in
  check (Alcotest.list Alcotest.string) "parse failure reported" [ "P1" ]
    (finding_rules r)

(* ---------- the regression vslint protects: seed -> one run ---------- *)

let rendered_trace seed =
  let nodes = [ 0; 1; 2; 3 ] in
  let c = Vc.create ~seed ~n:(List.length nodes) () in
  let rng = Vs_util.Rng.create (Int64.add seed 999L) in
  let script =
    Faults.random_script rng ~nodes ~start:1.0 ~duration:3.0 ~mean_gap:0.5 ()
  in
  Vc.run_script c script;
  Vc.pump_traffic c ~start:0.5 ~until:3.5 ~mean_gap:0.05;
  Vc.run c ~until:6.0;
  String.concat "\n"
    (List.map
       (fun e -> Format.asprintf "%a" Trace.pp_entry e)
       (Trace.entries (Sim.trace (Vc.sim c))))

let test_identical_seed_identical_trace () =
  let a = rendered_trace 11L and b = rendered_trace 11L in
  check Alcotest.bool "trace is non-trivial" true (String.length a > 1000);
  check Alcotest.string "byte-identical traces" a b

let () =
  Alcotest.run "vs_lint"
    [
      ( "bad fixtures",
        [
          Alcotest.test_case "d1_bad" `Quick
            (test_bad ~file:"d1_bad.ml" ~rules:[ "D1"; "D1" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d2_bad" `Quick
            (test_bad ~file:"d2_bad.ml" ~rules:[ "D2"; "D2" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d3_bad" `Quick
            (test_bad ~file:"d3_bad.ml"
               ~rules:[ "D3"; "D3"; "D3"; "D3" ]
               ~lines:[ 2; 3; 4; 5 ]);
          Alcotest.test_case "d4_bad" `Quick
            (test_bad ~file:"d4_bad.ml" ~rules:[ "D4"; "D4" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d5_bad" `Quick
            (test_bad ~file:"d5_bad.ml" ~rules:[ "D5"; "D5" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d5_bad columns" `Quick test_d5_bad_cols;
          Alcotest.test_case "s1_bad" `Quick
            (test_bad ~file:"s1_bad.ml" ~rules:[ "S1"; "D2" ] ~lines:[ 4; 5 ]);
        ] );
      ( "good fixtures",
        [
          Alcotest.test_case "d1_good" `Quick (test_good ~file:"d1_good.ml");
          Alcotest.test_case "d2_good" `Quick (test_good ~file:"d2_good.ml");
          Alcotest.test_case "d3_good" `Quick (test_good ~file:"d3_good.ml");
          Alcotest.test_case "d4_good" `Quick (test_good ~file:"d4_good.ml");
          Alcotest.test_case "d5_good" `Quick (test_good ~file:"d5_good.ml");
          Alcotest.test_case "d2_suppressed" `Quick test_suppressed_fixture;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "wrong rule does not suppress" `Quick
            test_wrong_rule_does_not_suppress;
          Alcotest.test_case "same-line suppression" `Quick
            test_same_line_suppression;
          Alcotest.test_case "d1 exemptions" `Quick test_d1_exemptions;
          Alcotest.test_case "unparseable source" `Quick test_unparseable_source;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical seed, identical trace" `Quick
            test_identical_seed_identical_trace;
        ] );
    ]
