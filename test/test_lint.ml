(* vslint fixture tests: every bad fixture trips exactly its rule with
   span-accurate findings, every good fixture (including justified
   suppressions) passes clean — plus the determinism regression the linter
   exists to protect: two identically-seeded cluster runs must produce
   byte-identical traces. *)

module Lint = Vs_lint.Lint
module Rules = Vs_lint.Rules
module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Faults = Vs_harness.Faults
module Vc = Vs_harness.Vsync_cluster

let check = Alcotest.check

(* dune runtest runs in _build/default/test; dune exec from the root. *)
let fixture name =
  let local = Filename.concat "lint_fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat "test" local

let finding_rules (r : Lint.report) =
  List.map (fun (f : Lint.finding) -> f.Lint.rule.Rules.id) r.Lint.findings

let finding_lines (r : Lint.report) =
  List.map (fun (f : Lint.finding) -> f.Lint.line) r.Lint.findings

(* ---------- bad fixtures: exactly their own rule, at the right lines ---------- *)

let test_bad ~file ~rules ~lines () =
  let r = Lint.lint_file (fixture file) in
  check (Alcotest.list Alcotest.string) (file ^ ": rules") rules
    (finding_rules r);
  check (Alcotest.list Alcotest.int) (file ^ ": lines") lines (finding_lines r);
  check Alcotest.int (file ^ ": nothing suppressed") 0
    (List.length r.Lint.suppressed)

let test_d5_bad_cols () =
  (* Span accuracy down to the column, on the D5 fixture. *)
  let r = Lint.lint_file (fixture "d5_bad.ml") in
  check (Alcotest.list Alcotest.int) "d5 columns" [ 32; 18 ]
    (List.map (fun (f : Lint.finding) -> f.Lint.col) r.Lint.findings)

(* ---------- good fixtures: clean ---------- *)

let test_good ~file () =
  let r = Lint.lint_file (fixture file) in
  check (Alcotest.list Alcotest.string) (file ^ ": clean") [] (finding_rules r)

let test_suppressed_fixture () =
  let r = Lint.lint_file (fixture "d2_suppressed.ml") in
  check (Alcotest.list Alcotest.string) "no findings" [] (finding_rules r);
  check (Alcotest.list Alcotest.string) "one justified suppression" [ "D2" ]
    (List.map
       (fun (f : Lint.finding) -> f.Lint.rule.Rules.id)
       r.Lint.suppressed)

(* ---------- suppression semantics on inline sources ---------- *)

(* Assembled so vslint never reads this file's own text as a suppression. *)
let allow_comment id just = "(* vs" ^ "lint: allow " ^ id ^ " " ^ just ^ " *)"

let test_wrong_rule_does_not_suppress () =
  let source =
    allow_comment "D3" "— justified, but for another rule"
    ^ "\nlet keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  let r = Lint.lint_source ~path:"inline.ml" source in
  check (Alcotest.list Alcotest.string) "D2 still reported" [ "D2" ]
    (finding_rules r)

let test_same_line_suppression () =
  let source =
    "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] "
    ^ allow_comment "D2" "— commutative enough for a test"
    ^ "\n"
  in
  let r = Lint.lint_source ~path:"inline.ml" source in
  check (Alcotest.list Alcotest.string) "suppressed" [] (finding_rules r);
  check Alcotest.int "recorded" 1 (List.length r.Lint.suppressed)

let test_d1_exemptions () =
  let source = "let jitter () = Random.float 0.5\n" in
  let hit = Lint.lint_source ~path:"lib/vsync/endpoint.ml" source in
  check (Alcotest.list Alcotest.string) "protocol code: D1" [ "D1" ]
    (finding_rules hit);
  let sim = Lint.lint_source ~path:"lib/sim/sim.ml" source in
  check (Alcotest.list Alcotest.string) "lib/sim is exempt" []
    (finding_rules sim);
  let rng = Lint.lint_source ~path:"lib/util/rng.ml" source in
  check (Alcotest.list Alcotest.string) "util/rng.ml is exempt" []
    (finding_rules rng)

let test_unparseable_source () =
  let r = Lint.lint_source ~path:"broken.ml" "let let let = = =\n" in
  check (Alcotest.list Alcotest.string) "parse failure reported" [ "P1" ]
    (finding_rules r)

(* ---------- the regression vslint protects: seed -> one run ---------- *)

let rendered_trace seed =
  let nodes = [ 0; 1; 2; 3 ] in
  let c = Vc.create ~seed ~n:(List.length nodes) () in
  let rng = Vs_util.Rng.create (Int64.add seed 999L) in
  let script =
    Faults.random_script rng ~nodes ~start:1.0 ~duration:3.0 ~mean_gap:0.5 ()
  in
  Vc.run_script c script;
  Vc.pump_traffic c ~start:0.5 ~until:3.5 ~mean_gap:0.05;
  Vc.run c ~until:6.0;
  String.concat "\n"
    (List.map
       (fun e -> Format.asprintf "%a" Trace.pp_entry e)
       (Trace.entries (Sim.trace (Vc.sim c))))

let test_identical_seed_identical_trace () =
  let a = rendered_trace 11L and b = rendered_trace 11L in
  check Alcotest.bool "trace is non-trivial" true (String.length a > 1000);
  check Alcotest.string "byte-identical traces" a b

(* ---------- whole-program passes: C1 / A1 / S2 / B1 ---------- *)

module Whole = Vs_lint.Whole

(* Fixtures are *played* at tree-relevant paths: the protected-directory
   logic keys on the path, so the same fixture file can stand in for
   protocol code (lib/vsync/...) or a helper (lib/util/...). *)
let played files =
  List.map
    (fun (as_path, name) -> (as_path, Lint.read_file (fixture name)))
    files

let by_rule id (r : Whole.report) =
  List.filter
    (fun (f : Lint.finding) -> String.equal f.Lint.rule.Rules.id id)
    r.Whole.findings

let rendered (fs : Lint.finding list) =
  List.map
    (fun (f : Lint.finding) ->
      Printf.sprintf "%s:%d:%d:%s: %s" f.Lint.file f.Lint.line f.Lint.col
        f.Lint.rule.Rules.id f.Lint.message)
    fs

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_contains what sub s =
  check Alcotest.bool
    (Printf.sprintf "%s mentions %S (got %S)" what sub s)
    true (contains ~sub s)

(* The annotation marker, assembled so this file never registers it. *)
let alloc_free_marker = "(* vs" ^ "lint: alloc-free *)"

let test_c1_two_hop_chain () =
  let r =
    Whole.analyze
      ~files:
        (played
           [
             ("lib/util/c1_util.ml", "c1_util.ml");
             ("lib/vsync/c1_bad.ml", "c1_bad.ml");
           ])
      ()
  in
  match by_rule "C1" r with
  | [ f ] ->
      (* [relay] also inherits the effect but through the already-flagged
         [decide], so only the crossing is reported. *)
      check Alcotest.string "file" "lib/vsync/c1_bad.ml" f.Lint.file;
      check Alcotest.int "line (decide)" 5 f.Lint.line;
      check Alcotest.int "col (decide)" 4 f.Lint.col;
      check_contains "C1 message" "Ambient_time" f.Lint.message;
      check_contains "C1 chain hop 1" "c1_util.ml:stamp" f.Lint.message;
      check_contains "C1 chain hop 2" "c1_util.ml:raw_now" f.Lint.message;
      check_contains "C1 chain leaf" "Unix.gettimeofday" f.Lint.message
  | fs ->
      Alcotest.failf "expected exactly one C1 finding, got %d: %s"
        (List.length fs)
        (String.concat " | " (rendered fs))

let test_c1_capability_mask () =
  let r =
    Whole.analyze
      ~files:
        (played
           [
             ("lib/sim/c1_sim.ml", "c1_sim.ml");
             ("lib/vsync/c1_good.ml", "c1_good.ml");
           ])
      ()
  in
  check (Alcotest.list Alcotest.string)
    "capability route certifies clean (no findings at all)" []
    (rendered r.Whole.findings)

let test_a1_bad_fixture () =
  let path = fixture "a1_bad.ml" in
  let r = Whole.analyze ~files:[ (path, Lint.read_file path) ] () in
  let a1 = by_rule "A1" r in
  check (Alcotest.list Alcotest.string) "only A1 fires"
    [ "A1"; "A1"; "A1" ]
    (List.map (fun (f : Lint.finding) -> f.Lint.rule.Rules.id)
       r.Whole.findings);
  check (Alcotest.list Alcotest.int) "allocating sites" [ 5; 8; 13 ]
    (List.map (fun (f : Lint.finding) -> f.Lint.line) a1);
  (match a1 with
  | [ tuple; closure; call ] ->
      check_contains "tuple finding" "tuple construction" tuple.Lint.message;
      check_contains "closure finding" "closure" closure.Lint.message;
      check_contains "interprocedural finding" "make_pair" call.Lint.message
  | _ -> Alcotest.fail "expected three A1 findings")

let test_a1_good_fixture () =
  let path = fixture "a1_good.ml" in
  let r = Whole.analyze ~files:[ (path, Lint.read_file path) ] () in
  check (Alcotest.list Alcotest.string) "annotated clean functions pass" []
    (rendered r.Whole.findings)

let test_a1_orphan_annotation () =
  let source = alloc_free_marker ^ "\n\nlet later = 1\n" in
  let r = Whole.analyze ~files:[ ("orphan.ml", source) ] () in
  match r.Whole.findings with
  | [ f ] ->
      check Alcotest.string "rule" "A1" f.Lint.rule.Rules.id;
      check Alcotest.int "line" 1 f.Lint.line;
      check_contains "orphan message" "does not precede" f.Lint.message
  | fs ->
      Alcotest.failf "expected one orphan-annotation finding, got %s"
        (String.concat " | " (rendered fs))

let test_s2_stale () =
  let path = fixture "s2_bad.ml" in
  let r = Whole.analyze ~files:[ (path, Lint.read_file path) ] () in
  match r.Whole.findings with
  | [ f ] ->
      check Alcotest.string "rule" "S2" f.Lint.rule.Rules.id;
      check Alcotest.int "line of the stale allow" 6 f.Lint.line;
      check_contains "names the allowed rule" "allow D2" f.Lint.message
  | fs ->
      Alcotest.failf "expected one S2 finding, got %s"
        (String.concat " | " (rendered fs))

let test_s2_live () =
  let path = fixture "s2_good.ml" in
  let r = Whole.analyze ~files:[ (path, Lint.read_file path) ] () in
  check (Alcotest.list Alcotest.string) "live allow: no findings" []
    (rendered r.Whole.findings);
  check (Alcotest.list Alcotest.string) "the D2 stays suppressed" [ "D2" ]
    (List.map
       (fun (f : Lint.finding) -> f.Lint.rule.Rules.id)
       r.Whole.suppressed)

let test_b1_contract () =
  let bad =
    "let zero_alloc_contract = [ \"fake_net.ml:guard\" ]\n\nlet guard t = t\n"
  in
  let r = Whole.analyze ~files:[ ("fake_net.ml", bad) ] () in
  (match r.Whole.findings with
  | [ f ] ->
      check Alcotest.string "rule" "B1" f.Lint.rule.Rules.id;
      check Alcotest.int "line of the contract" 1 f.Lint.line;
      check_contains "names the entry" "fake_net.ml:guard" f.Lint.message
  | fs ->
      Alcotest.failf "expected one B1 finding, got %s"
        (String.concat " | " (rendered fs)));
  let good =
    alloc_free_marker
    ^ "\nlet guard t = t\n\nlet zero_alloc_contract = [ \"fake_net.ml:guard\" \
       ]\n"
  in
  let r = Whole.analyze ~files:[ ("fake_net.ml", good) ] () in
  check (Alcotest.list Alcotest.string) "annotated entry satisfies B1" []
    (rendered r.Whole.findings)

let whole_fixture_set () =
  played
    [
      ("lib/util/c1_util.ml", "c1_util.ml");
      ("lib/vsync/c1_bad.ml", "c1_bad.ml");
      ("lib/sim/c1_sim.ml", "c1_sim.ml");
      ("lib/vsync/c1_good.ml", "c1_good.ml");
      ("lib/net/a1_bad.ml", "a1_bad.ml");
      ("lib/net/a1_good.ml", "a1_good.ml");
      ("bin/s2_bad.ml", "s2_bad.ml");
      ("bin/s2_good.ml", "s2_good.ml");
    ]

let test_whole_determinism () =
  let run () =
    let r = Whole.analyze ~files:(whole_fixture_set ()) () in
    (rendered r.Whole.findings, rendered r.Whole.suppressed, r.Whole.chains)
  in
  let f1, s1, c1 = run () and f2, s2, c2 = run () in
  check Alcotest.bool "found something" true (f1 <> []);
  check (Alcotest.list Alcotest.string) "identical findings" f1 f2;
  check (Alcotest.list Alcotest.string) "identical suppressions" s1 s2;
  check (Alcotest.list Alcotest.string) "identical chains" c1 c2

(* The acceptance bar for the tree itself: the whole-program pass reports
   nothing on the real sources, and the bench's zero-alloc contract is
   present and exported.  dune copies the sources next to the test dir, so
   this runs against ../lib et al; @lint enforces the same from the rule
   side, so skipping when the sources are not visible loses nothing. *)
let test_real_tree_certified () =
  let roots = List.filter Sys.file_exists [ "../lib"; "../bin"; "../bench" ] in
  if roots <> [] then begin
    let r = Whole.analyze_paths roots in
    check (Alcotest.list Alcotest.string) "real tree certifies clean" []
      (rendered r.Whole.findings);
    let net = "../lib/net/net.ml" in
    if Sys.file_exists net then begin
      let src = Lint.read_file net in
      check Alcotest.bool "net.ml publishes the contract" true
        (contains ~sub:"zero_alloc_contract" src);
      check Alcotest.bool "contract covers the send meters" true
        (contains ~sub:":meter_send" src)
    end;
    let bench = "../bench/main.ml" in
    if Sys.file_exists bench then
      check Alcotest.bool "bench exports the contract it measures" true
        (contains ~sub:"zero_alloc_contract" (Lint.read_file bench))
  end

let () =
  Alcotest.run "vs_lint"
    [
      ( "bad fixtures",
        [
          Alcotest.test_case "d1_bad" `Quick
            (test_bad ~file:"d1_bad.ml" ~rules:[ "D1"; "D1" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d2_bad" `Quick
            (test_bad ~file:"d2_bad.ml" ~rules:[ "D2"; "D2" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d3_bad" `Quick
            (test_bad ~file:"d3_bad.ml"
               ~rules:[ "D3"; "D3"; "D3"; "D3" ]
               ~lines:[ 2; 3; 4; 5 ]);
          Alcotest.test_case "d4_bad" `Quick
            (test_bad ~file:"d4_bad.ml" ~rules:[ "D4"; "D4" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d5_bad" `Quick
            (test_bad ~file:"d5_bad.ml" ~rules:[ "D5"; "D5" ] ~lines:[ 2; 3 ]);
          Alcotest.test_case "d5_bad columns" `Quick test_d5_bad_cols;
          Alcotest.test_case "s1_bad" `Quick
            (test_bad ~file:"s1_bad.ml" ~rules:[ "S1"; "D2" ] ~lines:[ 4; 5 ]);
        ] );
      ( "good fixtures",
        [
          Alcotest.test_case "d1_good" `Quick (test_good ~file:"d1_good.ml");
          Alcotest.test_case "d2_good" `Quick (test_good ~file:"d2_good.ml");
          Alcotest.test_case "d3_good" `Quick (test_good ~file:"d3_good.ml");
          Alcotest.test_case "d4_good" `Quick (test_good ~file:"d4_good.ml");
          Alcotest.test_case "d5_good" `Quick (test_good ~file:"d5_good.ml");
          Alcotest.test_case "d2_suppressed" `Quick test_suppressed_fixture;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "wrong rule does not suppress" `Quick
            test_wrong_rule_does_not_suppress;
          Alcotest.test_case "same-line suppression" `Quick
            test_same_line_suppression;
          Alcotest.test_case "d1 exemptions" `Quick test_d1_exemptions;
          Alcotest.test_case "unparseable source" `Quick test_unparseable_source;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "C1 two-hop laundering chain" `Quick
            test_c1_two_hop_chain;
          Alcotest.test_case "C1 capability mask" `Quick
            test_c1_capability_mask;
          Alcotest.test_case "A1 bad fixture" `Quick test_a1_bad_fixture;
          Alcotest.test_case "A1 good fixture" `Quick test_a1_good_fixture;
          Alcotest.test_case "A1 orphan annotation" `Quick
            test_a1_orphan_annotation;
          Alcotest.test_case "S2 stale allow" `Quick test_s2_stale;
          Alcotest.test_case "S2 live allow" `Quick test_s2_live;
          Alcotest.test_case "B1 contract coverage" `Quick test_b1_contract;
          Alcotest.test_case "identical findings across two runs" `Quick
            test_whole_determinism;
          Alcotest.test_case "real tree certifies clean" `Quick
            test_real_tree_certified;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical seed, identical trace" `Quick
            test_identical_seed_identical_trace;
        ] );
    ]
