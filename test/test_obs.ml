(* Tests for the observability layer: recorder levels, JSONL/Chrome
   exporters, metrics derivation, histogram quantiles, determinism of the
   rendered artifacts, and the legacy Trace shim. *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Event = Vs_obs.Event
module Recorder = Vs_obs.Recorder
module Json = Vs_obs.Json
module Export = Vs_obs.Export
module Metrics = Vs_obs.Metrics
module Summary = Vs_stats.Summary
module Lineage = Vs_obs.Lineage
module Query = Vs_obs.Query
module Campaign = Vs_check.Campaign

let check = Alcotest.check

let p node inc = { Event.node; inc }

let v epoch node = { Event.epoch; proposer = p node 0 }

(* ---------- lib/stats quantiles (the histogram backend) ---------- *)

let test_percentile_empty () =
  let s = Summary.create () in
  check (Alcotest.float 0.) "empty p50" 0. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "empty p95" 0. (Summary.percentile s 0.95);
  check Alcotest.bool "empty max is -inf" true
    (Summary.max_value s = Float.neg_infinity)

let test_percentile_single () =
  let s = Summary.of_list [ 42. ] in
  check (Alcotest.float 0.) "single p50" 42. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "single p95" 42. (Summary.percentile s 0.95);
  check (Alcotest.float 0.) "single max" 42. (Summary.max_value s)

let test_percentile_nearest_rank () =
  (* 1..20: nearest-rank p95 is the ceil(0.95*20) = 19th smallest. *)
  let s = Summary.of_list (List.init 20 (fun i -> float_of_int (i + 1))) in
  check (Alcotest.float 0.) "p95 of 1..20" 19. (Summary.percentile s 0.95);
  check (Alcotest.float 0.) "p50 of 1..20" 10. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "p100 of 1..20" 20. (Summary.percentile s 1.0)

(* ---------- recorder levels ---------- *)

let test_recorder_levels () =
  let off = Recorder.create ~level:Recorder.Off () in
  Recorder.emit off ~time:1. Event.Heal;
  check Alcotest.int "Off records nothing" 0 (Recorder.count off);
  let full = Recorder.create ~level:Recorder.Full () in
  Recorder.emit full ~time:1. Event.Heal;
  Recorder.emit full ~time:2. (Event.Crash { proc = p 0 0 });
  check Alcotest.int "Full records" 2 (Recorder.count full);
  check (Alcotest.list (Alcotest.float 0.)) "entries oldest first" [ 1.; 2. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.entries full))

let test_protocol_skips_traffic () =
  (* A lossy campaign recorded at Protocol level must contain protocol
     events but no per-message traffic. *)
  let recorder = Recorder.create ~level:Recorder.Protocol () in
  let spec = Campaign.generate ~seed:3 ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  let names =
    List.map (fun e -> Event.type_name e.Recorder.event) (Recorder.entries recorder)
  in
  check Alcotest.bool "has protocol events" true (List.mem "install" names);
  check Alcotest.bool "no sends at Protocol" false (List.mem "send" names);
  check Alcotest.bool "no recvs at Protocol" false (List.mem "recv" names)

let test_tail () =
  let r = Recorder.create ~level:Recorder.Full () in
  for i = 1 to 10 do
    Recorder.emit r ~time:(float_of_int i) Event.Heal
  done;
  let tail = Recorder.tail ~limit:3 r in
  check (Alcotest.list (Alcotest.float 0.)) "last 3, oldest first" [ 8.; 9.; 10. ]
    (List.map (fun e -> e.Recorder.time) tail);
  check Alcotest.int "tail larger than stream" 10
    (List.length (Recorder.tail ~limit:50 r))

let test_level_parse () =
  check Alcotest.bool "case-insensitive" true
    (Recorder.level_of_string "FULL" = Some Recorder.Full
    && Recorder.level_of_string "Protocol" = Some Recorder.Protocol
    && Recorder.level_of_string "off" = Some Recorder.Off);
  check Alcotest.bool "garbage rejected" true
    (Recorder.level_of_string "fullest" = None);
  check
    (Alcotest.list Alcotest.string)
    "valid set for CLI errors" [ "off"; "protocol"; "full" ]
    Recorder.all_level_names

let test_capacity () =
  let r = Recorder.create ~capacity:4 ~level:Recorder.Full () in
  check Alcotest.bool "capacity is visible" true
    (Recorder.capacity r = Some 4);
  for i = 1 to 3 do
    Recorder.emit r ~time:(float_of_int i) Event.Heal
  done;
  (* Read once below capacity, then keep emitting: the materialized view
     must be invalidated, not served stale. *)
  check (Alcotest.list (Alcotest.float 0.)) "below capacity" [ 1.; 2.; 3. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.entries r));
  for i = 4 to 10 do
    Recorder.emit r ~time:(float_of_int i) Event.Heal
  done;
  check Alcotest.int "count keeps the total across eviction" 10
    (Recorder.count r);
  check (Alcotest.list (Alcotest.float 0.)) "wraparound keeps newest 4"
    [ 7.; 8.; 9.; 10. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.entries r));
  check (Alcotest.list (Alcotest.float 0.)) "tail within the ring" [ 9.; 10. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.tail ~limit:2 r));
  check (Alcotest.list (Alcotest.float 0.)) "tail capped by the ring"
    [ 7.; 8.; 9.; 10. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.tail ~limit:50 r));
  Recorder.clear r;
  check Alcotest.int "clear resets" 0 (Recorder.count r);
  check Alcotest.bool "clear empties entries" true (Recorder.entries r = []);
  check Alcotest.bool "capacity must be positive" true
    (try
       ignore (Recorder.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* ---------- exporters ---------- *)

let full_run seed =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  recorder

let test_jsonl_deterministic () =
  let a = full_run 5 and b = full_run 5 in
  check Alcotest.bool "recorded something" true (Recorder.count a > 100);
  check Alcotest.string "identical seeds give byte-identical JSONL"
    (Export.jsonl_of_entries (Recorder.entries a))
    (Export.jsonl_of_entries (Recorder.entries b));
  check Alcotest.string "and byte-identical metrics summaries"
    (Metrics.to_text (Metrics.of_entries (Recorder.entries a)))
    (Metrics.to_text (Metrics.of_entries (Recorder.entries b)))

let test_jsonl_round_trip () =
  let recorder = full_run 11 in
  let text = Export.jsonl_of_entries (Recorder.entries recorder) in
  match Export.entries_of_jsonl text with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok entries ->
      check Alcotest.int "entry count survives" (Recorder.count recorder)
        (List.length entries);
      check Alcotest.string "re-emission is the identity" text
        (Export.jsonl_of_entries entries)

let test_chrome_export () =
  let recorder = full_run 7 in
  let doc = Export.chrome_of_entries (Recorder.entries recorder) in
  match Json.of_string doc with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          check Alcotest.bool "has events" true (List.length events > 0);
          List.iter
            (fun ev ->
              let has k = Json.member k ev <> None in
              let meta =
                match Option.bind (Json.member "ph" ev) Json.to_string_opt with
                | Some "M" -> true
                | Some _ | None -> false
              in
              (* process-scoped "M" metadata carries no tid *)
              check Alcotest.bool "event has ph/pid(/tid)" true
                (has "ph" && has "pid" && (has "tid" || meta)))
            events)

(* ---------- metrics derivation on a synthetic stream ---------- *)

let test_metrics_derivation () =
  let e time event = { Recorder.time; event } in
  let entries =
    [
      e 0.0
        (Event.Propose { proc = p 0 0; vid = v 1 0; members = [ p 0 0; p 1 0 ] });
      e 0.1 (Event.Flush { proc = p 1 0; vid = v 1 0; seen = 2 });
      e 0.25
        (Event.Install
           { proc = p 1 0; vid = v 1 0; members = [ p 0 0; p 1 0 ]; sync = 3 });
      e 0.3
        (Event.Send
           { src = p 0 0; dst = p 1 0; kind = "data"; bytes = 8; msg = None });
      e 0.4
        (Event.Drop
           {
             src = p 0 0; dst = p 1 0; kind = "data"; reason = "loss";
             msg = None;
           });
    ]
  in
  let m = Metrics.of_entries entries in
  check Alcotest.int "installs counted" 1 (Metrics.counter m "gms.installs");
  check Alcotest.int "drops by reason" 1 (Metrics.counter m "net.drops.loss");
  check Alcotest.int "sends by mode default N" 1
    (Metrics.counter m "net.sends.mode.N");
  (* Histograms are HDR-bucketed: reported values are bucket upper bounds,
     within a factor (1 + error) above the exact sample. *)
  let check_hdr name exact h =
    match h with
    | None -> Alcotest.fail (name ^ ": histogram missing")
    | Some s ->
        let v = Vs_obs.Hdr.max_value s in
        let ok = v >= exact && v <= exact *. (1. +. Vs_obs.Hdr.error s) in
        check Alcotest.bool (name ^ " within bucket error") true ok
  in
  check_hdr "latency = propose->install" 0.25
    (Metrics.hist m "view.install-latency");
  check_hdr "stall = flush->install" 0.15 (Metrics.hist m "view.flush-stall");
  check_hdr "sync count" 3. (Metrics.hist m "view.sync-deliveries")

(* ---------- lineage conservation on a seeded lossy run ---------- *)

(* Every send the stream records must be accounted for — delivered, dropped
   with a reason, or still in flight at shutdown — and no data-path event
   may reference a message the fold did not track.  Shared between the
   unbatched campaign run and the batched-wire cluster run below: the
   conservation law is per payload, so it must survive payloads travelling
   inside {!Vs_vsync.Wire.Batch} envelopes unchanged. *)
let assert_conservation entries =
  let lng = Lineage.of_entries entries in
  check Alcotest.bool "messages tracked" true (lng.Lineage.lifecycles <> []);
  (* no orphans: every identity-carrying event belongs to a lifecycle *)
  List.iter
    (fun (e : Recorder.entry) ->
      match Event.msg_of e.Recorder.event with
      | None -> ()
      | Some m ->
          if Lineage.lifecycle lng m = None then
            Alcotest.failf "orphaned data-path event for %s"
              (Event.msg_to_string m))
    entries;
  let assoc_total l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  let total_drops = ref 0 and total_received = ref 0 in
  List.iter
    (fun (l : Lineage.lifecycle) ->
      let count w =
        List.length
          (List.filter
             (fun (h : Lineage.hop) -> h.Lineage.h_what = w)
             l.Lineage.l_hops)
      in
      let sends = count Lineage.Sent
      and dups = count Lineage.Duplicated
      and recvs = count Lineage.Received in
      let pre, infl =
        List.fold_left
          (fun (pre, infl) (h : Lineage.hop) ->
            match h.Lineage.h_what with
            | Lineage.Dropped r ->
                if Lineage.send_time_reason r then (pre + 1, infl)
                else (pre, infl + 1)
            | Lineage.Sent | Lineage.Received | Lineage.Duplicated ->
                (pre, infl))
          (0, 0) l.Lineage.l_hops
      in
      let name = Event.msg_to_string l.Lineage.l_msg in
      check Alcotest.int (name ^ ": copies = sends + dups") (sends + dups)
        l.Lineage.l_copies;
      check Alcotest.int (name ^ ": received") recvs l.Lineage.l_received;
      check Alcotest.int (name ^ ": send-time drops") pre
        (assoc_total l.Lineage.l_predrops);
      check Alcotest.int (name ^ ": in-flight drops") infl
        (assoc_total l.Lineage.l_inflight_drops);
      check Alcotest.int
        (name ^ ": in flight = copies - received - in-flight drops")
        (l.Lineage.l_copies - l.Lineage.l_received
        - assoc_total l.Lineage.l_inflight_drops)
        l.Lineage.l_in_flight;
      check Alcotest.bool (name ^ ": in flight >= 0") true
        (l.Lineage.l_in_flight >= 0);
      List.iter
        (fun (r, _) ->
          check Alcotest.bool (name ^ ": predrop reason " ^ r) true
            (Lineage.send_time_reason r))
        l.Lineage.l_predrops;
      List.iter
        (fun (r, _) ->
          check Alcotest.bool (name ^ ": in-flight reason " ^ r) true
            (not (Lineage.send_time_reason r)))
        l.Lineage.l_inflight_drops;
      total_drops :=
        !total_drops + assoc_total l.Lineage.l_predrops
        + assoc_total l.Lineage.l_inflight_drops;
      total_received := !total_received + l.Lineage.l_received)
    lng.Lineage.lifecycles;
  check Alcotest.bool "the lossy run actually dropped copies" true
    (!total_drops > 0);
  check Alcotest.bool "and delivered some" true (!total_received > 0);
  (* cross-check against the query layer's typed counting *)
  let sends_q = Query.(count (of_type "send" &&& carries_msg)) entries in
  let dups_q = Query.(count (of_type "dup" &&& carries_msg)) entries in
  let copies =
    List.fold_left
      (fun acc (l : Lineage.lifecycle) -> acc + l.Lineage.l_copies)
      0 lng.Lineage.lifecycles
  in
  check Alcotest.int "query counting agrees with the fold" (sends_q + dups_q)
    copies

(* E11-style network: substantial loss and duplication, unbatched wire. *)
let test_lineage_conservation () =
  let spec = Campaign.generate ~seed:13 ~nodes:4 ~quick:true () in
  let spec =
    {
      spec with
      Campaign.knobs =
        {
          spec.Campaign.knobs with
          Campaign.loss_prob = 0.2;
          dup_prob = 0.08;
        };
    }
  in
  let recorder = Recorder.create ~level:Recorder.Full () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  assert_conservation (Recorder.entries recorder)

(* The same conservation law with batching on: payloads travel inside
   Wire.Batch envelopes, but the Full-level stream still records one
   identity-carrying event per payload copy, so the per-message ledger must
   balance exactly as in the unbatched run. *)
let test_lineage_conservation_batched () =
  let module Vc = Vs_harness.Vsync_cluster in
  let module Endpoint = Vs_vsync.Endpoint in
  let recorder = Recorder.create ~level:Recorder.Full () in
  let config =
    {
      Endpoint.default_config with
      Endpoint.batching = true;
      stability_interval = Some 0.05;
      pipeline_depth = 4;
      batch_max = 32;
    }
  in
  let net_config =
    {
      Vs_net.Net.default_config with
      Vs_net.Net.drop_prob = 0.15;
      dup_prob = 0.05;
    }
  in
  let c = Vc.create ~seed:909L ~obs:recorder ~net_config ~config ~n:4 () in
  Vc.run c ~until:1.5;
  for _ = 1 to 30 do
    Vc.multicast_from c ~node:0 ();
    Vc.multicast_from c ~node:1 ~order:Endpoint.Total ()
  done;
  Vc.run c ~until:6.0;
  check Alcotest.bool "the batched wire was exercised" true
    ((Vc.stats_total c).Endpoint.batches_sent > 0);
  assert_conservation (Recorder.entries recorder)

(* ---------- canonical JSON ---------- *)

let test_json_canonical () =
  List.iter
    (fun (txt, expect) ->
      match Json.of_string txt with
      | Error e -> Alcotest.failf "%s does not parse: %s" txt e
      | Ok j -> check Alcotest.string txt expect (Json.to_string j))
    [
      ({|{"a":1,"b":[true,null,"x\n"],"t":0.25}|},
       {|{"a":1,"b":[true,null,"x\n"],"t":0.25}|});
      ({|{"t":3.0}|}, {|{"t":3.0}|});
      ("[]", "[]");
    ];
  check Alcotest.string "integer float" "3.0" (Json.float_repr 3.);
  check Alcotest.string "fraction" "0.0012" (Json.float_repr 0.0012)

(* ---------- the legacy Trace shim ---------- *)

let test_trace_shim () =
  let sim = Sim.create ~obs:(Recorder.create ~level:Recorder.Full ()) () in
  let tr = Sim.trace sim in
  Sim.record sim ~component:"app" "first";
  Sim.emit sim (Event.Crash { proc = p 2 0 });
  Sim.record sim ~component:"app" "second";
  check Alcotest.int "length counts typed and note events" 3 (Trace.length tr);
  let app = Trace.by_component tr "app" in
  check (Alcotest.list Alcotest.string) "by_component filters notes"
    [ "first"; "second" ]
    (List.map (fun e -> e.Trace.message) app);
  let all = Trace.entries tr in
  check (Alcotest.list Alcotest.string) "typed events render into the stream"
    [ "app"; "net"; "app" ]
    (List.map (fun e -> e.Trace.component) all);
  (* repeated reads share the materialized view *)
  check Alcotest.bool "entries cache is reused" true (Trace.entries tr == all)

let () =
  Alcotest.run "obs"
    [
      ( "quantiles",
        [
          Alcotest.test_case "empty" `Quick test_percentile_empty;
          Alcotest.test_case "single" `Quick test_percentile_single;
          Alcotest.test_case "nearest-rank" `Quick test_percentile_nearest_rank;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "levels" `Quick test_recorder_levels;
          Alcotest.test_case "protocol-skips-traffic" `Quick
            test_protocol_skips_traffic;
          Alcotest.test_case "tail" `Quick test_tail;
          Alcotest.test_case "level-parse" `Quick test_level_parse;
          Alcotest.test_case "capacity" `Quick test_capacity;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl-deterministic" `Quick test_jsonl_deterministic;
          Alcotest.test_case "jsonl-round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "chrome" `Quick test_chrome_export;
        ] );
      ( "metrics",
        [ Alcotest.test_case "derivation" `Quick test_metrics_derivation ] );
      ( "lineage",
        [
          Alcotest.test_case "conservation" `Quick test_lineage_conservation;
          Alcotest.test_case "conservation (batched wire)" `Quick
            test_lineage_conservation_batched;
        ] );
      ( "json", [ Alcotest.test_case "canonical" `Quick test_json_canonical ] );
      ( "trace-shim", [ Alcotest.test_case "compat" `Quick test_trace_shim ] );
    ]
