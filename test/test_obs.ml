(* Tests for the observability layer: recorder levels, JSONL/Chrome
   exporters, metrics derivation, histogram quantiles, determinism of the
   rendered artifacts, and the legacy Trace shim. *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace
module Event = Vs_obs.Event
module Recorder = Vs_obs.Recorder
module Json = Vs_obs.Json
module Export = Vs_obs.Export
module Metrics = Vs_obs.Metrics
module Summary = Vs_stats.Summary
module Campaign = Vs_check.Campaign

let check = Alcotest.check

let p node inc = { Event.node; inc }

let v epoch node = { Event.epoch; proposer = p node 0 }

(* ---------- lib/stats quantiles (the histogram backend) ---------- *)

let test_percentile_empty () =
  let s = Summary.create () in
  check (Alcotest.float 0.) "empty p50" 0. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "empty p95" 0. (Summary.percentile s 0.95);
  check Alcotest.bool "empty max is -inf" true
    (Summary.max_value s = Float.neg_infinity)

let test_percentile_single () =
  let s = Summary.of_list [ 42. ] in
  check (Alcotest.float 0.) "single p50" 42. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "single p95" 42. (Summary.percentile s 0.95);
  check (Alcotest.float 0.) "single max" 42. (Summary.max_value s)

let test_percentile_nearest_rank () =
  (* 1..20: nearest-rank p95 is the ceil(0.95*20) = 19th smallest. *)
  let s = Summary.of_list (List.init 20 (fun i -> float_of_int (i + 1))) in
  check (Alcotest.float 0.) "p95 of 1..20" 19. (Summary.percentile s 0.95);
  check (Alcotest.float 0.) "p50 of 1..20" 10. (Summary.percentile s 0.5);
  check (Alcotest.float 0.) "p100 of 1..20" 20. (Summary.percentile s 1.0)

(* ---------- recorder levels ---------- *)

let test_recorder_levels () =
  let off = Recorder.create ~level:Recorder.Off () in
  Recorder.emit off ~time:1. Event.Heal;
  check Alcotest.int "Off records nothing" 0 (Recorder.count off);
  let full = Recorder.create ~level:Recorder.Full () in
  Recorder.emit full ~time:1. Event.Heal;
  Recorder.emit full ~time:2. (Event.Crash { proc = p 0 0 });
  check Alcotest.int "Full records" 2 (Recorder.count full);
  check (Alcotest.list (Alcotest.float 0.)) "entries oldest first" [ 1.; 2. ]
    (List.map (fun e -> e.Recorder.time) (Recorder.entries full))

let test_protocol_skips_traffic () =
  (* A lossy campaign recorded at Protocol level must contain protocol
     events but no per-message traffic. *)
  let recorder = Recorder.create ~level:Recorder.Protocol () in
  let spec = Campaign.generate ~seed:3 ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  let names =
    List.map (fun e -> Event.type_name e.Recorder.event) (Recorder.entries recorder)
  in
  check Alcotest.bool "has protocol events" true (List.mem "install" names);
  check Alcotest.bool "no sends at Protocol" false (List.mem "send" names);
  check Alcotest.bool "no recvs at Protocol" false (List.mem "recv" names)

let test_tail () =
  let r = Recorder.create ~level:Recorder.Full () in
  for i = 1 to 10 do
    Recorder.emit r ~time:(float_of_int i) Event.Heal
  done;
  let tail = Recorder.tail ~limit:3 r in
  check (Alcotest.list (Alcotest.float 0.)) "last 3, oldest first" [ 8.; 9.; 10. ]
    (List.map (fun e -> e.Recorder.time) tail);
  check Alcotest.int "tail larger than stream" 10
    (List.length (Recorder.tail ~limit:50 r))

(* ---------- exporters ---------- *)

let full_run seed =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  recorder

let test_jsonl_deterministic () =
  let a = full_run 5 and b = full_run 5 in
  check Alcotest.bool "recorded something" true (Recorder.count a > 100);
  check Alcotest.string "identical seeds give byte-identical JSONL"
    (Export.jsonl_of_entries (Recorder.entries a))
    (Export.jsonl_of_entries (Recorder.entries b));
  check Alcotest.string "and byte-identical metrics summaries"
    (Metrics.to_text (Metrics.of_entries (Recorder.entries a)))
    (Metrics.to_text (Metrics.of_entries (Recorder.entries b)))

let test_jsonl_round_trip () =
  let recorder = full_run 11 in
  let text = Export.jsonl_of_entries (Recorder.entries recorder) in
  match Export.entries_of_jsonl text with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok entries ->
      check Alcotest.int "entry count survives" (Recorder.count recorder)
        (List.length entries);
      check Alcotest.string "re-emission is the identity" text
        (Export.jsonl_of_entries entries)

let test_chrome_export () =
  let recorder = full_run 7 in
  let doc = Export.chrome_of_entries (Recorder.entries recorder) in
  match Json.of_string doc with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some events ->
          check Alcotest.bool "has events" true (List.length events > 0);
          List.iter
            (fun ev ->
              let has k = Json.member k ev <> None in
              let meta =
                match Option.bind (Json.member "ph" ev) Json.to_string_opt with
                | Some "M" -> true
                | Some _ | None -> false
              in
              (* process-scoped "M" metadata carries no tid *)
              check Alcotest.bool "event has ph/pid(/tid)" true
                (has "ph" && has "pid" && (has "tid" || meta)))
            events)

(* ---------- metrics derivation on a synthetic stream ---------- *)

let test_metrics_derivation () =
  let e time event = { Recorder.time; event } in
  let entries =
    [
      e 0.0
        (Event.Propose { proc = p 0 0; vid = v 1 0; members = [ p 0 0; p 1 0 ] });
      e 0.1 (Event.Flush { proc = p 1 0; vid = v 1 0; seen = 2 });
      e 0.25
        (Event.Install
           { proc = p 1 0; vid = v 1 0; members = [ p 0 0; p 1 0 ]; sync = 3 });
      e 0.3 (Event.Send { src = p 0 0; dst = p 1 0; kind = "data"; bytes = 8 });
      e 0.4 (Event.Drop { src = p 0 0; dst = p 1 0; kind = "data"; reason = "loss" });
    ]
  in
  let m = Metrics.of_entries entries in
  check Alcotest.int "installs counted" 1 (Metrics.counter m "gms.installs");
  check Alcotest.int "drops by reason" 1 (Metrics.counter m "net.drops.loss");
  check Alcotest.int "sends by mode default N" 1
    (Metrics.counter m "net.sends.mode.N");
  (match Metrics.hist m "view.install-latency" with
  | None -> Alcotest.fail "no install-latency histogram"
  | Some s ->
      check (Alcotest.float 1e-9) "latency = propose->install" 0.25
        (Summary.max_value s));
  (match Metrics.hist m "view.flush-stall" with
  | None -> Alcotest.fail "no flush-stall histogram"
  | Some s ->
      check (Alcotest.float 1e-9) "stall = flush->install" 0.15
        (Summary.max_value s));
  match Metrics.hist m "view.sync-deliveries" with
  | None -> Alcotest.fail "no sync-deliveries histogram"
  | Some s -> check (Alcotest.float 0.) "sync count" 3. (Summary.max_value s)

(* ---------- canonical JSON ---------- *)

let test_json_canonical () =
  List.iter
    (fun (txt, expect) ->
      match Json.of_string txt with
      | Error e -> Alcotest.failf "%s does not parse: %s" txt e
      | Ok j -> check Alcotest.string txt expect (Json.to_string j))
    [
      ({|{"a":1,"b":[true,null,"x\n"],"t":0.25}|},
       {|{"a":1,"b":[true,null,"x\n"],"t":0.25}|});
      ({|{"t":3.0}|}, {|{"t":3.0}|});
      ("[]", "[]");
    ];
  check Alcotest.string "integer float" "3.0" (Json.float_repr 3.);
  check Alcotest.string "fraction" "0.0012" (Json.float_repr 0.0012)

(* ---------- the legacy Trace shim ---------- *)

let test_trace_shim () =
  let sim = Sim.create ~obs:(Recorder.create ~level:Recorder.Full ()) () in
  let tr = Sim.trace sim in
  Sim.record sim ~component:"app" "first";
  Sim.emit sim (Event.Crash { proc = p 2 0 });
  Sim.record sim ~component:"app" "second";
  check Alcotest.int "length counts typed and note events" 3 (Trace.length tr);
  let app = Trace.by_component tr "app" in
  check (Alcotest.list Alcotest.string) "by_component filters notes"
    [ "first"; "second" ]
    (List.map (fun e -> e.Trace.message) app);
  let all = Trace.entries tr in
  check (Alcotest.list Alcotest.string) "typed events render into the stream"
    [ "app"; "net"; "app" ]
    (List.map (fun e -> e.Trace.component) all);
  (* repeated reads share the materialized view *)
  check Alcotest.bool "entries cache is reused" true (Trace.entries tr == all)

let () =
  Alcotest.run "obs"
    [
      ( "quantiles",
        [
          Alcotest.test_case "empty" `Quick test_percentile_empty;
          Alcotest.test_case "single" `Quick test_percentile_single;
          Alcotest.test_case "nearest-rank" `Quick test_percentile_nearest_rank;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "levels" `Quick test_recorder_levels;
          Alcotest.test_case "protocol-skips-traffic" `Quick
            test_protocol_skips_traffic;
          Alcotest.test_case "tail" `Quick test_tail;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl-deterministic" `Quick test_jsonl_deterministic;
          Alcotest.test_case "jsonl-round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "chrome" `Quick test_chrome_export;
        ] );
      ( "metrics",
        [ Alcotest.test_case "derivation" `Quick test_metrics_derivation ] );
      ( "json", [ Alcotest.test_case "canonical" `Quick test_json_canonical ] );
      ( "trace-shim", [ Alcotest.test_case "compat" `Quick test_trace_shim ] );
    ]
