(* Tests for the discrete-event engine: ordering, tie-breaking,
   cancellation, horizons and determinism. *)

module Sim = Vs_sim.Sim
module Trace = Vs_sim.Trace

let check = Alcotest.check

let test_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.after sim 0.3 (fun () -> log := 3 :: !log));
  ignore (Sim.after sim 0.1 (fun () -> log := 1 :: !log));
  ignore (Sim.after sim 0.2 (fun () -> log := 2 :: !log));
  check Alcotest.bool "quiescent" true (Sim.run sim = Sim.Quiescent);
  check (Alcotest.list Alcotest.int) "fired in time order" [ 1; 2; 3 ]
    (List.rev !log)

let test_fifo_tiebreak () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 10 do
    ignore (Sim.after sim 1.0 (fun () -> log := i :: !log))
  done;
  ignore (Sim.run sim);
  check (Alcotest.list Alcotest.int) "same-time events fire in schedule order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.after sim 0.5 (fun () -> seen := Sim.now sim :: !seen));
  ignore (Sim.after sim 1.5 (fun () -> seen := Sim.now sim :: !seen));
  ignore (Sim.run sim);
  check (Alcotest.list (Alcotest.float 1e-9)) "now() at fire times" [ 0.5; 1.5 ]
    (List.rev !seen)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.after sim 0.1 (fun () -> fired := true) in
  Sim.cancel h;
  ignore (Sim.run sim);
  check Alcotest.bool "cancelled event did not fire" false !fired;
  check Alcotest.int "nothing processed" 0 (Sim.events_processed sim)

let test_cancel_idempotent () =
  let sim = Sim.create () in
  let h = Sim.after sim 0.1 (fun () -> ()) in
  Sim.cancel h;
  Sim.cancel h;
  ignore (Sim.run sim);
  check Alcotest.int "no explosion" 0 (Sim.events_processed sim)

let test_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.after sim 1.0 (fun () -> fired := 1 :: !fired));
  ignore (Sim.after sim 3.0 (fun () -> fired := 3 :: !fired));
  let reason = Sim.run ~until:2.0 sim in
  check Alcotest.bool "stopped at horizon" true (reason = Sim.Reached_until);
  check (Alcotest.list Alcotest.int) "only early event" [ 1 ] !fired;
  check (Alcotest.float 1e-9) "clock at horizon" 2.0 (Sim.now sim);
  ignore (Sim.run sim);
  check (Alcotest.list Alcotest.int) "resumes past horizon" [ 3; 1 ] !fired

let test_event_budget () =
  let sim = Sim.create () in
  for _ = 1 to 10 do
    ignore (Sim.after sim 0.1 (fun () -> ()))
  done;
  let reason = Sim.run ~max_events:4 sim in
  check Alcotest.bool "budget hit" true (reason = Sim.Event_budget);
  check Alcotest.int "exactly 4" 4 (Sim.events_processed sim)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.after sim 0.1 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim 0.1 (fun () -> log := "inner" :: !log))));
  ignore (Sim.run sim);
  check (Alcotest.list Alcotest.string) "nested events run" [ "outer"; "inner" ]
    (List.rev !log)

let test_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.after sim 1.0 (fun () -> ()));
  ignore (Sim.run sim);
  check Alcotest.bool "at past raises" true
    (try
       ignore (Sim.at sim 0.5 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "negative delay raises" true
    (try
       ignore (Sim.after sim (-0.1) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_pending_count () =
  let sim = Sim.create () in
  let h1 = Sim.after sim 0.1 (fun () -> ()) in
  ignore (Sim.after sim 0.2 (fun () -> ()));
  check Alcotest.int "two pending" 2 (Sim.pending sim);
  Sim.cancel h1;
  check Alcotest.int "one pending after cancel" 1 (Sim.pending sim)

(* The count is maintained live (no heap rebuild); in particular a cancelled
   entry that is later lazily skipped by pop must not be double-counted. *)
let test_pending_cancel_then_pop () =
  let sim = Sim.create () in
  let fired = ref [] in
  let h1 = Sim.after sim 0.1 (fun () -> fired := 1 :: !fired) in
  ignore (Sim.after sim 0.2 (fun () -> fired := 2 :: !fired));
  ignore (Sim.after sim 0.3 (fun () -> fired := 3 :: !fired));
  check Alcotest.int "three pending" 3 (Sim.pending sim);
  Sim.cancel h1;
  check Alcotest.int "two after cancel" 2 (Sim.pending sim);
  Sim.cancel h1;
  check Alcotest.int "re-cancel does not decrement" 2 (Sim.pending sim);
  (* This pop skips the cancelled h1 and fires the 0.2 event. *)
  check Alcotest.bool "step fires" true (Sim.step sim);
  check (Alcotest.list Alcotest.int) "skipped the cancelled head" [ 2 ] !fired;
  check Alcotest.int "one pending after pop" 1 (Sim.pending sim);
  ignore (Sim.run sim);
  check Alcotest.int "drained" 0 (Sim.pending sim);
  check Alcotest.int "only live events processed" 2 (Sim.events_processed sim)

let test_step () =
  let sim = Sim.create () in
  let n = ref 0 in
  ignore (Sim.after sim 0.1 (fun () -> incr n));
  ignore (Sim.after sim 0.2 (fun () -> incr n));
  check Alcotest.bool "step 1" true (Sim.step sim);
  check Alcotest.int "one fired" 1 !n;
  check Alcotest.bool "step 2" true (Sim.step sim);
  check Alcotest.bool "step empty" false (Sim.step sim)

let test_trace () =
  let sim = Sim.create () in
  ignore (Sim.after sim 0.5 (fun () -> Sim.record sim ~component:"test" "hello"));
  ignore (Sim.run sim);
  match Trace.by_component (Sim.trace sim) "test" with
  | [ e ] ->
      check (Alcotest.float 1e-9) "trace time" 0.5 e.Trace.time;
      check Alcotest.string "trace message" "hello" e.Trace.message
  | other -> Alcotest.failf "expected one entry, got %d" (List.length other)

(* Determinism: the same seeded program produces the same event history. *)
let run_random_program seed =
  let sim = Sim.create ~seed () in
  let rng = Sim.fork_rng sim in
  let log = Buffer.create 64 in
  let rec spawn depth =
    if depth < 64 then
      ignore
        (Sim.after sim (Vs_util.Rng.uniform rng 0.001 0.1) (fun () ->
             Buffer.add_string log (Printf.sprintf "%f;" (Sim.now sim));
             if Vs_util.Rng.bool rng 0.7 then spawn (depth + 1)))
  in
  spawn 0;
  spawn 0;
  ignore (Sim.run sim);
  Buffer.contents log

let test_determinism () =
  check Alcotest.string "identical runs" (run_random_program 99L)
    (run_random_program 99L);
  check Alcotest.bool "different seeds differ" true
    (run_random_program 99L <> run_random_program 100L)

let sim_order_property =
  QCheck.Test.make ~name:"events always fire in nondecreasing time order"
    ~count:100
    QCheck.(small_list (float_bound_inclusive 10.))
    (fun delays ->
      let sim = Sim.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          ignore
            (Sim.after sim (Float.abs d) (fun () ->
                 times := Sim.now sim :: !times)))
        delays;
      ignore (Sim.run sim);
      let fired = List.rev !times in
      let rec nondecreasing = function
        | a :: b :: rest -> a <= b && nondecreasing (b :: rest)
        | _ -> true
      in
      nondecreasing fired && List.length fired = List.length delays)

let () =
  Alcotest.run "vs_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_fifo_tiebreak;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
          Alcotest.test_case "until horizon" `Quick test_until_horizon;
          Alcotest.test_case "event budget" `Quick test_event_budget;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "past rejected" `Quick test_past_rejected;
          Alcotest.test_case "pending count" `Quick test_pending_count;
          Alcotest.test_case "pending: cancel then pop" `Quick
            test_pending_cancel_then_pop;
          Alcotest.test_case "single step" `Quick test_step;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "determinism" `Quick test_determinism;
          QCheck_alcotest.to_alcotest sim_order_property;
        ] );
    ]
