(* vsmon telemetry-plane tests: HDR histogram error bounds against the
   exact Summary statistics, byte-determinism of the windowed series and
   the OpenMetrics exposition, schedule-invisibility of scraping, stall
   attribution arithmetic, and the bench-diff verdict rules. *)

module Hdr = Vs_obs.Hdr
module Metrics = Vs_obs.Metrics
module Series = Vs_obs.Series
module Stall = Vs_obs.Stall
module Openmetrics = Vs_obs.Openmetrics
module Bench_diff = Vs_obs.Bench_diff
module Json = Vs_obs.Json
module Event = Vs_obs.Event
module Recorder = Vs_obs.Recorder
module Export = Vs_obs.Export
module Summary = Vs_stats.Summary
module Campaign = Vs_check.Campaign

let p node inc = { Event.node; inc }

let v epoch node = { Event.epoch; proposer = p node 0 }

(* --- HDR histogram ------------------------------------------------------- *)

(* Quantile bound: for samples inside (lowest, highest), the bucketed
   quantile must satisfy exact <= reported <= exact * (1 + error), where
   exact is Summary's nearest-rank percentile (both use the same rank
   rule, so they pick the same underlying sample). *)
let hdr_quantile_property =
  QCheck.Test.make ~name:"hdr percentile within one bucket of exact" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200)
           (float_range 0.000002 999_000.))
        (float_bound_inclusive 1.))
    (fun (samples, q) ->
      let h = Hdr.create () in
      let s = Summary.create () in
      List.iter
        (fun x ->
          Hdr.record h x;
          Summary.add s x)
        samples;
      let exact = Summary.percentile s q in
      let reported = Hdr.percentile h q in
      let err = Hdr.error h in
      reported >= exact *. (1. -. 1e-9)
      && reported <= exact *. (1. +. err) *. (1. +. 1e-9))

let test_hdr_edges () =
  let h = Hdr.create () in
  Alcotest.(check int) "empty count" 0 (Hdr.count h);
  Alcotest.(check (float 0.)) "empty percentile" 0. (Hdr.percentile h 0.99);
  (* one sample in each special bucket: zero/negative, underflow,
     in-range, overflow *)
  Hdr.record h 0.;
  Hdr.record h (-3.);
  Hdr.record h 1e-9;
  Hdr.record h 5.;
  Hdr.record h 2e9;
  Alcotest.(check int) "count" 5 (Hdr.count h);
  Alcotest.(check bool) "max >= overflow rep" true (Hdr.max_value h > 1e6);
  Alcotest.(check bool) "min is the zero bucket" true (Hdr.min_value h <= 0.);
  let pcts = List.map (Hdr.percentile h) [ 0.1; 0.3; 0.5; 0.7; 0.9; 1. ] in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "percentiles nondecreasing" true (nondecreasing pcts);
  (* cumulative ends at the total count and is the _bucket series *)
  (match List.rev (Hdr.cumulative h) with
  | (_, last) :: _ -> Alcotest.(check int) "cumulative total" 5 last
  | [] -> Alcotest.fail "cumulative empty");
  Hdr.clear h;
  Alcotest.(check int) "clear resets" 0 (Hdr.count h);
  Alcotest.(check bool) "layout survives clear" true (Hdr.bucket_count h > 0)

let test_hdr_create_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "lowest <= 0 rejected" true
    (invalid (fun () -> Hdr.create ~lowest:0. ()));
  Alcotest.(check bool) "highest <= lowest rejected" true
    (invalid (fun () -> Hdr.create ~lowest:1. ~highest:1. ()));
  Alcotest.(check bool) "error out of range rejected" true
    (invalid (fun () -> Hdr.create ~error:1.5 ()))

(* --- series -------------------------------------------------------------- *)

let run_campaign ~seed ~series () =
  let recorder = Recorder.create ~level:Recorder.Protocol () in
  (match series with
  | Some s ->
      ignore
        (Recorder.add_sink recorder (Series.observe s)
          : Recorder.sink_handle)
  | None -> ());
  let spec = Campaign.generate ~seed ~nodes:4 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  (match series with
  | Some s ->
      let now =
        match Recorder.tail ~limit:1 recorder with
        | [ e ] -> e.Recorder.time
        | _ -> 0.
      in
      Series.finish s ~now
  | None -> ());
  recorder

let test_series_deterministic () =
  let one () =
    let s = Series.create () in
    let (_ : Recorder.t) = run_campaign ~seed:7 ~series:(Some s) () in
    s
  in
  let a = one () and b = one () in
  Alcotest.(check string) "series JSON byte-identical"
    (Json.to_string (Series.to_json a))
    (Json.to_string (Series.to_json b));
  Alcotest.(check string) "openmetrics byte-identical"
    (Openmetrics.of_metrics (Series.metrics a))
    (Openmetrics.of_metrics (Series.metrics b));
  Alcotest.(check bool) "windows were scraped" true (Series.count a > 0)

(* Attaching a series must not perturb the run: the recorded stream with
   scraping on is byte-identical to the stream with scraping off. *)
let test_series_schedule_invisible () =
  let plain = run_campaign ~seed:11 ~series:None () in
  let tapped =
    run_campaign ~seed:11 ~series:(Some (Series.create ())) ()
  in
  Alcotest.(check string) "event stream unchanged by scraping"
    (Export.jsonl_of_entries (Recorder.entries plain))
    (Export.jsonl_of_entries (Recorder.entries tapped))

let test_series_windows () =
  let s = Series.create ~interval:1.0 () in
  let send t =
    Series.observe s ~time:t
      (Event.Send
         { src = p 0 0; dst = p 1 0; kind = "data"; bytes = 8; msg = None })
  in
  send 0.2;
  send 0.4;
  send 1.5;
  send 2.7;
  Series.finish s ~now:2.7;
  let snaps = Series.snapshots s in
  Alcotest.(check int) "three windows" 3 (List.length snaps);
  (match snaps with
  | [ w0; w1; w2 ] ->
      Alcotest.(check int) "window indices" 0 w0.Series.window;
      Alcotest.(check (float 1e-9)) "w1 start" 1.0 w1.Series.t_start;
      Alcotest.(check int) "cumulative sends at w0" 2
        (Series.delta_counter ~prev:None w0 "net.sends");
      Alcotest.(check int) "delta sends in w1" 1
        (Series.delta_counter ~prev:(Some w0) w1 "net.sends");
      Alcotest.(check int) "delta sends in w2" 1
        (Series.delta_counter ~prev:(Some w1) w2 "net.sends")
  | _ -> Alcotest.fail "unexpected snapshot shape");
  (* finish is idempotent and observe is ignored afterwards *)
  Series.finish s ~now:9.9;
  send 5.0;
  Alcotest.(check int) "no windows after finish" 3
    (List.length (Series.snapshots s))

let test_series_ring_truncation () =
  let s = Series.create ~capacity:2 ~interval:1.0 () in
  let note t =
    Series.observe s ~time:t
      (Event.Note { component = "app"; message = "tick" })
  in
  List.iter note [ 0.5; 1.5; 2.5; 3.5 ];
  Series.finish s ~now:3.5;
  Alcotest.(check int) "all windows counted" 4 (Series.count s);
  let snaps = Series.snapshots s in
  Alcotest.(check int) "ring keeps newest two" 2 (List.length snaps);
  match snaps with
  | [ a; b ] ->
      Alcotest.(check int) "oldest retained" 2 a.Series.window;
      Alcotest.(check int) "newest retained" 3 b.Series.window
  | _ -> Alcotest.fail "unexpected ring shape"

(* --- stall attribution ---------------------------------------------------- *)

let test_stall_attribution () =
  let e time event = { Recorder.time; event } in
  let vid = v 2 0 in
  let members = [ p 0 0; p 1 0 ] in
  let entries =
    [
      e 1.0 (Event.Propose { proc = p 0 0; vid; members });
      e 1.0 (Event.Propose { proc = p 1 0; vid; members });
      e 1.2 (Event.Flush { proc = p 0 0; vid; seen = 2 });
      e 1.5 (Event.Flush { proc = p 1 0; vid; seen = 2 });
      e 1.6 (Event.Install { proc = p 0 0; vid; members; sync = 2 });
      e 1.7 (Event.Install { proc = p 1 0; vid; members; sync = 2 });
    ]
  in
  let attrs = Stall.of_entries entries in
  Alcotest.(check int) "one attribution per install" 2 (List.length attrs);
  List.iter
    (fun a ->
      Alcotest.(check bool) "segments non-negative" true
        (a.Stall.a_propose_wait >= 0.
        && a.Stall.a_flush_wait >= 0.
        && a.Stall.a_stability_wait >= 0.);
      (* the three segments must sum to the install latency *)
      Alcotest.(check (float 1e-9)) "segments sum to latency"
        (a.Stall.a_time -. 1.0) (Stall.total a))
    attrs;
  (* proc 0 flushed early: its flush-ack wait spans to the last flush *)
  (match attrs with
  | a0 :: _ ->
      Alcotest.(check (float 1e-9)) "propose wait" 0.2 a0.Stall.a_propose_wait;
      Alcotest.(check (float 1e-9)) "flush-ack wait" 0.3 a0.Stall.a_flush_wait;
      Alcotest.(check (float 1e-9)) "stability wait" 0.1
        a0.Stall.a_stability_wait
  | [] -> Alcotest.fail "no attributions");
  let rows = Stall.windows ~interval:1.0 attrs in
  Alcotest.(check int) "one occupied window" 1 (List.length rows);
  match rows with
  | [ r ] ->
      Alcotest.(check int) "installs in window" 2 r.Stall.w_installs;
      Alcotest.(check (float 1e-9)) "window total = summed latency"
        (0.6 +. 0.7) (Stall.window_total r)
  | _ -> Alcotest.fail "unexpected window shape"

(* --- openmetrics ---------------------------------------------------------- *)

let test_openmetrics_format () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 m "net.sends";
  Metrics.set_gauge m "run.last-event-time" 1.25;
  Metrics.observe m "view.install-latency" 0.2;
  Metrics.observe m "view.install-latency" 0.4;
  let text = Openmetrics.of_metrics m in
  let has sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter family" true
    (has "# TYPE vs_net_sends counter");
  Alcotest.(check bool) "counter sample" true (has "vs_net_sends_total 3");
  Alcotest.(check bool) "gauge sample" true
    (has "vs_run_last_event_time 1.25");
  Alcotest.(check bool) "+Inf bucket" true
    (has "vs_view_install_latency_bucket{le=\"+Inf\"} 2");
  Alcotest.(check bool) "hist count" true (has "vs_view_install_latency_count 2");
  Alcotest.(check bool) "EOF terminator" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  Alcotest.(check string) "sanitize" "a_b:c_9_"
    (Openmetrics.sanitize "a.b:c 9%");
  Alcotest.(check string) "non-finite spelling" "+Inf"
    (Openmetrics.sample_value infinity)

(* --- bench diff ----------------------------------------------------------- *)

let obj fields = Json.Obj fields

let test_bench_diff_verdicts () =
  let old_doc =
    obj
      [
        ("zero_alloc_send", Json.Bool true);
        ("words_per_call", Json.Float 0.);
        ("e1_wall_ms", Json.Float 10.);
        ("ops_per_wall_s", Json.Float 1000.);
        ("note", Json.Str "info");
      ]
  in
  let new_doc =
    obj
      [
        ("zero_alloc_send", Json.Bool false);
        ("words_per_call", Json.Float 2.);
        ("e1_wall_ms", Json.Float 10.5);
        ("ops_per_wall_s", Json.Float 100.);
        ("note", Json.Str "changed-info");
      ]
  in
  let rows = Bench_diff.diff ~old_doc ~new_doc () in
  let verdict key =
    match List.find_opt (fun r -> r.Bench_diff.key = key) rows with
    | Some r -> r.Bench_diff.r_verdict
    | None -> Alcotest.fail ("missing key " ^ key)
  in
  Alcotest.(check bool) "bool false-ing regresses" true
    (verdict "zero_alloc_send" = Bench_diff.Regressed);
  Alcotest.(check bool) "word count increase regresses" true
    (verdict "words_per_call" = Bench_diff.Regressed);
  Alcotest.(check bool) "small wall drift tolerated" true
    (verdict "e1_wall_ms" = Bench_diff.Ok);
  Alcotest.(check bool) "throughput collapse regresses" true
    (verdict "ops_per_wall_s" = Bench_diff.Regressed);
  Alcotest.(check bool) "info churn never gates" true
    (verdict "note" = Bench_diff.Changed);
  Alcotest.(check int) "exit code flags regressions" 1
    (Bench_diff.exit_code rows);
  (* the flake-free CI subset excludes the throughput key (measured) *)
  let det = Bench_diff.deterministic_regressions rows in
  Alcotest.(check int) "deterministic subset" 2 (List.length det);
  (* identical documents diff clean *)
  let clean = Bench_diff.diff ~old_doc ~new_doc:old_doc () in
  Alcotest.(check int) "identical docs exit 0" 0 (Bench_diff.exit_code clean)

let test_bench_diff_keyed_arrays () =
  let arm name wall = obj [ ("name", Json.Str name); ("wall_ms", Json.Float wall) ] in
  let old_doc = obj [ ("arms", Json.Arr [ arm "a" 5.; arm "b" 7. ]) ] in
  (* same content, reordered — must not produce any changed/added rows *)
  let new_doc = obj [ ("arms", Json.Arr [ arm "b" 7.; arm "a" 5. ]) ] in
  let rows = Bench_diff.diff ~old_doc ~new_doc () in
  Alcotest.(check bool) "reordering keyed arrays is invisible" true
    (List.for_all (fun r -> r.Bench_diff.r_verdict = Bench_diff.Ok) rows);
  (* a dropped arm shows up as removed, a new one as added *)
  let new_doc2 = obj [ ("arms", Json.Arr [ arm "a" 5.; arm "c" 9. ]) ] in
  let rows2 = Bench_diff.diff ~old_doc ~new_doc:new_doc2 () in
  let count v =
    List.length (List.filter (fun r -> r.Bench_diff.r_verdict = v) rows2)
  in
  Alcotest.(check int) "removed arm reported" 2 (count Bench_diff.Removed);
  Alcotest.(check int) "added arm reported" 2 (count Bench_diff.Added)

let () =
  Alcotest.run "vsmon"
    [
      ( "hdr",
        [
          QCheck_alcotest.to_alcotest hdr_quantile_property;
          Alcotest.test_case "edge buckets and clear" `Quick test_hdr_edges;
          Alcotest.test_case "create validation" `Quick
            test_hdr_create_validation;
        ] );
      ( "series",
        [
          Alcotest.test_case "byte-deterministic across seeds" `Quick
            test_series_deterministic;
          Alcotest.test_case "scraping is schedule-invisible" `Quick
            test_series_schedule_invisible;
          Alcotest.test_case "window closing and deltas" `Quick
            test_series_windows;
          Alcotest.test_case "ring truncation" `Quick
            test_series_ring_truncation;
        ] );
      ( "stall",
        [
          Alcotest.test_case "attribution arithmetic" `Quick
            test_stall_attribution;
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "exposition format" `Quick test_openmetrics_format ] );
      ( "bench-diff",
        [
          Alcotest.test_case "verdict rules" `Quick test_bench_diff_verdicts;
          Alcotest.test_case "keyed arrays" `Quick test_bench_diff_keyed_arrays;
        ] );
    ]
