(* vspath tests: the causal DAG's structural invariants under loss,
   duplication and batching; the critical-path decomposition's exact
   telescoping to view.install-latency and its agreement with the Stall
   attribution; byte-determinism of the folded-stack and diff-runs
   renderings; the multi-sink recorder regression; and the clean-vs-corrupt
   rundiff fixture that must name the corrupted field. *)

module Event = Vs_obs.Event
module Recorder = Vs_obs.Recorder
module Series = Vs_obs.Series
module Stall = Vs_obs.Stall
module Causal = Vs_obs.Causal
module Critpath = Vs_obs.Critpath
module Flame = Vs_obs.Flame
module Rundiff = Vs_obs.Rundiff
module Json = Vs_obs.Json
module Campaign = Vs_check.Campaign
module Repro = Vs_check.Repro

(* One Full-level recording of a seed-derived campaign: the generator
   randomizes loss, duplication and delay jitter per seed, so sweeping a
   seed list sweeps the fault space the DAG invariants must hold under. *)
let record ?(nodes = 4) ~seed () =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let spec = Campaign.generate ~seed ~nodes ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  Recorder.entries recorder

let seeds = [ 1; 2; 3; 5; 8; 13 ]

(* --- recorder multi-sink (satellite: removable sink handles) ------------- *)

let note n = Event.Note { component = "test"; message = string_of_int n }

let test_two_live_sinks () =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let s = Series.create () in
  let c = Causal.collector () in
  let h_series = Recorder.add_sink recorder (Series.observe s) in
  ignore (Recorder.add_sink recorder (Causal.observe c) : Recorder.sink_handle);
  let spec = Campaign.generate ~seed:11 ~nodes:3 ~quick:true () in
  let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
  let entries = Recorder.entries recorder in
  let collected = Causal.collector_entries c in
  Alcotest.(check bool) "recording is non-trivial" true
    (List.length entries > 100);
  Alcotest.(check int) "collector saw every recorded event"
    (List.length entries) (List.length collected);
  Alcotest.(check bool) "collector stream identical to the recorder's" true
    (List.for_all2
       (fun (a : Recorder.entry) (b : Recorder.entry) ->
         a.Recorder.time = b.Recorder.time
         && String.equal
              (Event.render a.Recorder.event)
              (Event.render b.Recorder.event))
       entries collected);
  (* the series sink was live on the same emissions *)
  Series.finish s ~now:10.;
  Alcotest.(check bool) "series sink observed the run too" true
    (String.length (Json.to_string (Series.to_json s)) > 2);
  (* removing one sink detaches exactly that handle *)
  let before = List.length (Causal.collector_entries c) in
  Recorder.remove_sink recorder h_series;
  Recorder.emit recorder ~time:999. (note 1);
  Alcotest.(check int) "surviving sink still notified" (before + 1)
    (List.length (Causal.collector_entries c))

let test_remove_sink_is_exact () =
  let recorder = Recorder.create ~level:Recorder.Full () in
  let n1 = ref 0 and n2 = ref 0 in
  let h1 = Recorder.add_sink recorder (fun ~time:_ _ -> incr n1) in
  ignore
    (Recorder.add_sink recorder (fun ~time:_ _ -> incr n2)
      : Recorder.sink_handle);
  Recorder.emit recorder ~time:1. (note 1);
  Recorder.emit recorder ~time:2. (note 2);
  Recorder.emit recorder ~time:3. (note 3);
  Recorder.remove_sink recorder h1;
  Recorder.emit recorder ~time:4. (note 4);
  Recorder.emit recorder ~time:5. (note 5);
  (* removing twice (or removing a dead handle) is a no-op, not an error *)
  Recorder.remove_sink recorder h1;
  Recorder.emit recorder ~time:6. (note 6);
  Alcotest.(check int) "removed sink saw only the first three" 3 !n1;
  Alcotest.(check int) "surviving sink saw everything" 6 !n2;
  Alcotest.(check int) "recorder itself kept recording" 6
    (Recorder.count recorder)

(* --- DAG structural invariants (satellite: property sweep) --------------- *)

let test_dag_invariants () =
  List.iter
    (fun seed ->
      let entries = record ~seed () in
      let dag = Causal.of_entries entries in
      let st = Causal.stats dag in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: node per entry" seed)
        (List.length entries) st.Causal.c_nodes;
      (match Causal.validate dag with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "seed %d: DAG validation failed: %s" seed msg);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no orphan recvs" seed)
        0 st.Causal.c_orphan_recvs;
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: orphan list empty" seed)
        [] (Causal.orphans dag);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: message edges exist" seed)
        true
        (st.Causal.c_message_edges > 0))
    seeds

(* --- critical-path decomposition (satellite: sums and Stall agreement) --- *)

let test_critpath_sums_to_install_latency () =
  List.iter
    (fun seed ->
      let entries = record ~seed () in
      let cp = Critpath.of_entries entries in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: installs decomposed" seed)
        true
        (cp.Critpath.installs <> []);
      List.iter
        (fun ip ->
          let sum = Critpath.path_sum ip in
          if
            not
              (Critpath.close ~tol:Critpath.default_tol sum
                 ip.Critpath.ip_latency)
          then
            Alcotest.failf
              "seed %d: segments sum to %.12f but install latency is %.12f"
              seed sum ip.Critpath.ip_latency;
          (* segments tile the window chronologically: each begins where
             the previous ended *)
          ignore
            (List.fold_left
               (fun frontier (s : Critpath.segment) ->
                 if not (Critpath.close ~tol:Critpath.default_tol
                           s.Critpath.s_from frontier)
                 then
                   Alcotest.failf "seed %d: segment gap at %.12f" seed
                     s.Critpath.s_from;
                 s.Critpath.s_until)
               (ip.Critpath.ip_install_time -. ip.Critpath.ip_latency)
               ip.Critpath.ip_segments
              : float))
        cp.Critpath.installs)
    seeds

let test_critpath_agrees_with_stall () =
  List.iter
    (fun seed ->
      let entries = record ~seed () in
      let cp = Critpath.of_entries entries in
      let attrs = Stall.of_entries entries in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: one path per stall attribution" seed)
        (List.length attrs)
        (List.length cp.Critpath.installs);
      Alcotest.(check bool)
        (Printf.sprintf
           "seed %d: flush/stability components agree with Stall" seed)
        true
        (Critpath.consistent_with_stall cp attrs))
    seeds

(* The harness plumbs the same verdict into its outcome — but only for
   Full-level recordings; a Protocol-level run must not pay for the DAG. *)
let test_outcome_straggler_plumbing () =
  let spec = Campaign.generate ~seed:3 ~nodes:4 ~quick:true () in
  let full = Recorder.create ~level:Recorder.Full () in
  let outcome = Campaign.run ~obs:full spec in
  let cp = Critpath.of_entries (Recorder.entries full) in
  let expect =
    Option.map
      (fun (p, c) -> (Event.proc_to_string p, c))
      cp.Critpath.straggler
  in
  Alcotest.(check (option (pair string (float 1e-12))))
    "outcome straggler is the critpath verdict" expect outcome.Campaign.straggler;
  Alcotest.(check bool) "full-level run has a verdict" true (expect <> None);
  let proto = Recorder.create ~level:Recorder.Protocol () in
  let outcome_p = Campaign.run ~obs:proto spec in
  Alcotest.(check (option (pair string (float 0.))))
    "protocol-level run skips the verdict" None outcome_p.Campaign.straggler

(* --- byte-determinism (satellite: folded stacks and diff-runs) ----------- *)

let test_folded_deterministic () =
  let one () = Flame.folded (Critpath.of_entries (record ~seed:3 ())) in
  let a = one () and b = one () in
  Alcotest.(check bool) "folded output non-empty" true (String.length a > 0);
  Alcotest.(check string) "folded stacks byte-identical" a b;
  let chrome () = Flame.chrome_of_entries (record ~seed:3 ()) in
  Alcotest.(check string) "chrome + critpath lanes byte-identical" (chrome ())
    (chrome ())

let test_diff_runs_deterministic () =
  let diff () =
    let a = record ~seed:5 () and b = record ~seed:5 () in
    Rundiff.diff ~a ~b
  in
  let d = diff () in
  (match d.Rundiff.d_divergence with
  | None -> ()
  | Some dv ->
      Alcotest.failf "identically-seeded runs diverged at event %d"
        dv.Rundiff.dv_index);
  Alcotest.(check int) "no ops only in A" 0 d.Rundiff.d_ops_only_a;
  Alcotest.(check int) "no ops only in B" 0 d.Rundiff.d_ops_only_b;
  Alcotest.(check string) "diff text byte-identical across reruns"
    (Rundiff.to_text d)
    (Rundiff.to_text (diff ()));
  Alcotest.(check string) "diff json byte-identical across reruns"
    (Json.to_string (Rundiff.to_json d))
    (Json.to_string (Rundiff.to_json (diff ())));
  (* different seeds must diverge, and every phase delta must be present *)
  let d2 = Rundiff.diff ~a:(record ~seed:5 ()) ~b:(record ~seed:6 ()) in
  Alcotest.(check bool) "different seeds diverge" true
    (d2.Rundiff.d_divergence <> None);
  Alcotest.(check bool) "phase deltas present" true
    (List.length d2.Rundiff.d_phases >= 10)

(* --- clean vs transient-corruption fixture (satellite 6) ----------------- *)

let load_fixture name =
  match Repro.load (Filename.concat "rundiff_fixtures" name) with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "fixture %s unreadable: %s" name msg

let test_rundiff_names_corrupted_field () =
  let run spec =
    let recorder = Recorder.create ~level:Recorder.Full () in
    let (_ : Campaign.outcome) = Campaign.run ~obs:recorder spec in
    Recorder.entries recorder
  in
  let clean = run (load_fixture "deps-truncate-clean.sexp") in
  let corrupt = run (load_fixture "deps-truncate-corrupt.sexp") in
  let d = Rundiff.diff ~a:clean ~b:corrupt in
  match d.Rundiff.d_divergence with
  | None -> Alcotest.fail "clean and corrupted runs did not diverge"
  | Some dv ->
      Alcotest.(check (option string))
        "first causal divergence names the corrupted field"
        (Some "stream.next") dv.Rundiff.dv_field;
      let contains sub s =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      (* the corrupted side's event at the divergence is the injection (the
         harness note announcing it, immediately followed by the protocol's
         Corrupt record the field above came from) *)
      (match dv.Rundiff.dv_b with
      | Some sig_b ->
          Alcotest.(check bool) "divergent B event is the injection" true
            (contains "corrupt" sig_b)
      | None -> Alcotest.fail "divergence has no B-side event");
      let text = Rundiff.to_text d in
      Alcotest.(check bool) "text rendering names the field" true
        (contains "corrupted field: stream.next" text)

let () =
  Alcotest.run "vspath"
    [
      ( "recorder-sinks",
        [
          Alcotest.test_case "two live sinks" `Quick test_two_live_sinks;
          Alcotest.test_case "remove is exact" `Quick
            test_remove_sink_is_exact;
        ] );
      ( "causal-dag",
        [ Alcotest.test_case "invariants" `Slow test_dag_invariants ] );
      ( "critical-path",
        [
          Alcotest.test_case "sums to install latency" `Slow
            test_critpath_sums_to_install_latency;
          Alcotest.test_case "agrees with stall" `Slow
            test_critpath_agrees_with_stall;
          Alcotest.test_case "outcome plumbing" `Quick
            test_outcome_straggler_plumbing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "folded stacks" `Quick test_folded_deterministic;
          Alcotest.test_case "diff-runs" `Quick test_diff_runs_deterministic;
        ] );
      ( "rundiff-fixture",
        [
          Alcotest.test_case "names corrupted field" `Quick
            test_rundiff_names_corrupted_field;
        ] );
    ]
