(* Tests for the view-synchronous endpoint: view formation, the data path,
   flush correctness, partitions and merges, the Isis-style admission
   throttle, and randomized campaigns checked against the global oracle. *)

module Sim = Vs_sim.Sim
module Net = Vs_net.Net
module Proc_id = Vs_net.Proc_id
module View = Vs_gms.View
module Endpoint = Vs_vsync.Endpoint
module Cluster = Vs_harness.Vsync_cluster
module Oracle = Vs_harness.Oracle
module Faults = Vs_harness.Faults

let check = Alcotest.check

let no_errors what errs =
  if errs <> [] then
    Alcotest.failf "%s: %d violations, first: %s" what (List.length errs)
      (List.hd errs)

let view_of_node c node =
  match Cluster.endpoint_on c node with
  | Some ep -> Endpoint.view ep
  | None -> Alcotest.failf "node %d is down" node

(* ---------- formation ---------- *)

let test_initial_singleton_views () =
  let c = Cluster.create ~n:3 () in
  (* Before any communication, each process has delivered its singleton
     view: the first event of its history (Section 3). *)
  Cluster.run c ~until:0.0001;
  List.iter
    (fun node ->
      let installs = Oracle.installs_of (Cluster.oracle c) ~proc:(Proc_id.initial node) in
      match installs with
      | (v, _) :: _ ->
          check Alcotest.int "first view is singleton" 1 (View.size v)
      | [] -> Alcotest.fail "no initial view")
    [ 0; 1; 2 ]

let test_group_forms () =
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:2.0;
  check Alcotest.bool "stable common view" true (Cluster.stable_view_reached c);
  check Alcotest.int "all four members" 4 (View.size (view_of_node c 0))

let test_messaging_all_delivered () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  for _ = 1 to 5 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ~order:Endpoint.Total ();
    Cluster.multicast_from c ~node:2 ()
  done;
  Cluster.run c ~until:2.0;
  (* 15 messages, 3 receivers each. *)
  check Alcotest.int "45 deliveries" 45 (Oracle.total_deliveries (Cluster.oracle c));
  no_errors "stable messaging" (Oracle.check_all (Cluster.oracle c))

let test_crash_shrinks_view () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  Cluster.apply_action c (Faults.Crash 2);
  Cluster.run c ~until:2.5;
  check Alcotest.bool "stable after crash" true (Cluster.stable_view_reached c);
  check Alcotest.int "two members left" 2 (View.size (view_of_node c 0));
  no_errors "crash run" (Oracle.check_all (Cluster.oracle c))

let test_leave_shrinks_view () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  (match Cluster.endpoint_on c 2 with
  | Some ep -> Endpoint.leave ep
  | None -> Alcotest.fail "node 2 down");
  Cluster.run c ~until:2.5;
  check Alcotest.int "two members after leave" 2 (View.size (view_of_node c 0));
  no_errors "leave run" (Oracle.check_all (Cluster.oracle c))

let test_recovery_rejoins_as_new_process () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  Cluster.apply_action c (Faults.Crash 1);
  Cluster.run c ~until:2.5;
  Cluster.apply_action c (Faults.Recover 1);
  Cluster.run c ~until:4.0;
  check Alcotest.bool "stable after recovery" true (Cluster.stable_view_reached c);
  let v = view_of_node c 0 in
  check Alcotest.int "three members again" 3 (View.size v);
  check Alcotest.bool "recovered process has a fresh identity" true
    (View.mem (Proc_id.make ~node:1 ~inc:1) v);
  no_errors "recovery run" (Oracle.check_all (Cluster.oracle c))

(* ---------- partitions ---------- *)

let test_concurrent_partitions () =
  let c = Cluster.create ~n:5 () in
  Cluster.run c ~until:1.0;
  Cluster.apply_action c (Faults.Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
  Cluster.run c ~until:2.5;
  let v0 = view_of_node c 0 and v2 = view_of_node c 2 in
  check Alcotest.int "minority view" 2 (View.size v0);
  check Alcotest.int "majority view" 3 (View.size v2);
  check Alcotest.bool "distinct concurrent views" false (View.equal v0 v2);
  (* Progress in both partitions. *)
  Cluster.multicast_from c ~node:0 ();
  Cluster.multicast_from c ~node:2 ();
  Cluster.run c ~until:3.0;
  no_errors "partitioned run" (Oracle.check_all (Cluster.oracle c))

let test_merge_carries_priors () =
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:1.0;
  Cluster.apply_action c (Faults.Partition [ [ 0; 1 ]; [ 2; 3 ] ]);
  Cluster.run c ~until:2.5;
  Cluster.apply_action c Faults.Heal;
  Cluster.run c ~until:4.0;
  check Alcotest.bool "merged" true (Cluster.stable_view_reached c);
  check Alcotest.int "all back" 4 (View.size (view_of_node c 0));
  (* The install recorded each member's prior view: two clusters. *)
  let installs = Oracle.installs_of (Cluster.oracle c) ~proc:(Proc_id.initial 0) in
  let final_view, _ = List.nth installs (List.length installs - 1) in
  check Alcotest.int "merged membership" 4 (View.size final_view);
  no_errors "merge run" (Oracle.check_all (Cluster.oracle c))

let test_agreement_across_partition_boundary () =
  (* Messages multicast close to the partition moment must still satisfy
     agreement: survivors into the same next view deliver the same sets. *)
  let c = Cluster.create ~n:4 () in
  Cluster.run c ~until:1.0;
  for _ = 1 to 10 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:3 ()
  done;
  Cluster.apply_action c (Faults.Partition [ [ 0; 1 ]; [ 2; 3 ] ]);
  for _ = 1 to 5 do
    Cluster.multicast_from c ~node:1 ();
    Cluster.multicast_from c ~node:2 ()
  done;
  Cluster.run c ~until:2.5;
  Cluster.apply_action c Faults.Heal;
  Cluster.run c ~until:4.0;
  no_errors "boundary agreement" (Oracle.check_all (Cluster.oracle c))

(* ---------- blocking and queuing ---------- *)

let test_multicast_queued_during_flush () =
  let c = Cluster.create ~n:3 () in
  Cluster.run c ~until:1.0;
  (* Force a view change and multicast immediately, while flushing. *)
  Cluster.apply_action c (Faults.Crash 2);
  let sim = Cluster.sim c in
  ignore
    (Sim.after sim 0.16 (fun () ->
         (* Inside the membership change window. *)
         Cluster.multicast_from c ~node:0 ()));
  Cluster.run c ~until:3.0;
  (* The queued message must eventually reach both survivors. *)
  let d0 = Oracle.deliveries_of (Cluster.oracle c) ~proc:(Proc_id.initial 0) in
  let d1 = Oracle.deliveries_of (Cluster.oracle c) ~proc:(Proc_id.initial 1) in
  check Alcotest.int "self delivery" 1 (List.length d0);
  check Alcotest.int "peer delivery" 1 (List.length d1);
  no_errors "queued multicast" (Oracle.check_all (Cluster.oracle c))

(* ---------- message loss and NACK recovery ---------- *)

let test_lossy_network_recovers () =
  let net_config = { Net.default_config with Net.drop_prob = 0.15 } in
  let c = Cluster.create ~seed:77L ~net_config ~n:3 () in
  Cluster.run c ~until:1.5;
  for _ = 1 to 30 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ()
  done;
  Cluster.run c ~until:6.0;
  no_errors "lossy run" (Oracle.check_all (Cluster.oracle c));
  (* Under 15% loss the NACK machinery must have fired. *)
  let any_retransmit =
    List.exists
      (fun ep -> (Endpoint.stats ep).Endpoint.nacks_sent > 0)
      (Cluster.live_endpoints c)
  in
  check Alcotest.bool "nacks used" true any_retransmit

let test_duplicating_network () =
  let net_config = { Net.default_config with Net.dup_prob = 0.3 } in
  let c = Cluster.create ~seed:78L ~net_config ~n:3 () in
  Cluster.run c ~until:1.5;
  for _ = 1 to 20 do
    Cluster.multicast_from c ~node:0 ()
  done;
  Cluster.run c ~until:3.0;
  (* Integrity: duplicates on the wire never reach the application twice. *)
  no_errors "duplicating run" (Oracle.check_all (Cluster.oracle c))

let test_stability_trims_logs () =
  let c = Cluster.create ~seed:79L ~n:3 () in
  Cluster.run c ~until:1.0;
  for _ = 1 to 20 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ()
  done;
  (* Leave time for delivery and a few stability gossip rounds. *)
  Cluster.run c ~until:2.0;
  let trimmed =
    List.fold_left
      (fun acc ep -> acc + (Endpoint.stats ep).Endpoint.stabilized)
      0 (Cluster.live_endpoints c)
  in
  check Alcotest.bool "stable messages trimmed from logs" true (trimmed > 0);
  (* Correctness is untouched: force a view change after trimming. *)
  Cluster.apply_action c (Faults.Crash 2);
  Cluster.run c ~until:4.0;
  no_errors "trimmed run" (Oracle.check_all (Cluster.oracle c))

let test_stability_disabled_is_correct () =
  let config =
    { Endpoint.default_config with Endpoint.stability_interval = None }
  in
  let c = Cluster.create ~seed:80L ~config ~n:3 () in
  Cluster.run c ~until:1.0;
  for _ = 1 to 10 do
    Cluster.multicast_from c ~node:0 ()
  done;
  Cluster.run c ~until:2.0;
  let trimmed =
    List.fold_left
      (fun acc ep -> acc + (Endpoint.stats ep).Endpoint.stabilized)
      0 (Cluster.live_endpoints c)
  in
  check Alcotest.int "nothing trimmed when disabled" 0 trimmed;
  Cluster.apply_action c (Faults.Crash 2);
  Cluster.run c ~until:4.0;
  no_errors "untrimmed run" (Oracle.check_all (Cluster.oracle c))

(* ---------- causal order ---------- *)

(* A mini-harness where deliveries trigger further causal multicasts, so
   real causal chains form; the network's delay spread (1-50 ms) would
   break the chains under FIFO alone. *)
let causal_harness ~seed ~n ~spawn =
  let sim = Sim.create ~seed () in
  let net_config =
    { Net.default_config with Net.delay_min = 0.001; delay_max = 0.050 }
  in
  let net = Net.create sim net_config in
  let universe = List.init n (fun i -> i) in
  let deliveries = Hashtbl.create 64 in (* node -> value list (rev) *)
  let parents = Hashtbl.create 64 in    (* value -> parent value *)
  let next_value = ref 0 in
  let endpoints = Hashtbl.create 8 in
  let rng = Sim.fork_rng sim in
  List.iter
    (fun node ->
      let me = Proc_id.initial node in
      let callbacks =
        {
          Endpoint.on_view = (fun _ -> ());
          on_message =
            (fun ~sender:_ value ->
              let seen =
                match Hashtbl.find_opt deliveries node with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add deliveries node r;
                    r
              in
              seen := value :: !seen;
              (* Chain reaction: sometimes answer causally.  Capped — every
                 multicast is delivered n times, so an uncapped reaction
                 with n*spawn > 1 would be supercritical. *)
              if !next_value < 200 && Vs_util.Rng.bool rng spawn then begin
                let ep = Hashtbl.find endpoints node in
                if Endpoint.is_alive ep then begin
                  incr next_value;
                  Hashtbl.replace parents !next_value value;
                  Endpoint.multicast ep ~order:Endpoint.Causal !next_value
                end
              end);
        }
      in
      let ep =
        Endpoint.create sim net ~me ~universe ~config:Endpoint.default_config
          ~callbacks
      in
      Hashtbl.replace endpoints node ep)
    universe;
  ignore (Sim.run ~until:1.5 sim);
  (* Roots of the chains. *)
  for _ = 1 to 5 do
    incr next_value;
    Endpoint.multicast (Hashtbl.find endpoints 0) ~order:Endpoint.Causal
      !next_value
  done;
  ignore (Sim.run ~until:6.0 sim);
  (deliveries, parents, universe)

let check_causal_order (deliveries, parents, universe) =
  List.iter
    (fun node ->
      match Hashtbl.find_opt deliveries node with
      | None -> ()
      | Some seen ->
          let order = List.rev !seen in
          let position = Hashtbl.create 64 in
          List.iteri (fun i v -> Hashtbl.replace position v i) order;
          Hashtbl.iter
            (fun child parent ->
              match
                (Hashtbl.find_opt position child, Hashtbl.find_opt position parent)
              with
              | Some ci, Some pi ->
                  if pi >= ci then
                    Alcotest.failf
                      "causality violated at node %d: %d delivered at %d, \
                       its cause %d at %d"
                      node child ci parent pi
              | Some _, None ->
                  Alcotest.failf
                    "node %d delivered %d without its cause %d" node child
                    parent
              | None, _ -> ())
            parents)
    universe

let test_causal_chains () =
  check_causal_order (causal_harness ~seed:91L ~n:4 ~spawn:0.6)

let causal_property =
  QCheck.Test.make ~name:"causal chains respect causality" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      check_causal_order
        (causal_harness ~seed:(Int64.of_int (seed + 300)) ~n:3 ~spawn:0.5);
      true)

(* ---------- Isis-style one-at-a-time admission ---------- *)

let test_one_at_a_time_throttle () =
  let config = { Endpoint.default_config with Endpoint.one_at_a_time = true } in
  let c = Cluster.create ~config ~n:4 () in
  Cluster.run c ~until:4.0;
  check Alcotest.bool "eventually complete" true (Cluster.stable_view_reached c);
  (* Growing from singletons to 4 members one at a time costs the
     coordinator at least 3 installs beyond its initial view. *)
  let installs = Oracle.installs_of (Cluster.oracle c) ~proc:(Proc_id.initial 0) in
  check Alcotest.bool "more view changes than batch admission" true
    (List.length installs >= 4);
  no_errors "one-at-a-time run" (Oracle.check_all (Cluster.oracle c))

let test_one_at_a_time_views_grow_by_one () =
  let config = { Endpoint.default_config with Endpoint.one_at_a_time = true } in
  let c = Cluster.create ~config ~n:5 () in
  Cluster.run c ~until:6.0;
  (* Per installed view, reconstruct each member's prior view from the
     oracle: the Isis restriction means a view is the survivors of one
     incumbent view plus at most one newcomer — so at most one member comes
     from outside the largest prior-view cluster. *)
  let oracle = Cluster.oracle c in
  let all_installs =
    List.concat_map
      (fun node ->
        let proc = Proc_id.initial node in
        List.map (fun (v, prior) -> (v.View.id, prior)) (Oracle.installs_of oracle ~proc))
      [ 0; 1; 2; 3; 4 ]
  in
  let by_view =
    Vs_util.Listx.group_by ~key:fst ~cmp_key:View.Id.compare all_installs
  in
  List.iter
    (fun (_, group) ->
      let priors = List.map snd group in
      let clusters =
        Vs_util.Listx.group_by ~key:(fun p -> p) ~cmp_key:View.Id.compare priors
      in
      let sizes =
        List.sort (fun a b -> compare b a) (List.map (fun (_, g) -> List.length g) clusters)
      in
      let outsiders =
        match sizes with [] -> 0 | biggest :: _ -> List.length priors - biggest
      in
      check Alcotest.bool "at most one member from outside the incumbents"
        true (outsiders <= 1))
    by_view

(* ---------- annotations ---------- *)

let test_annotations_collected () =
  let sim = Sim.create ~seed:31L () in
  let net = Net.create sim Net.default_config in
  let universe = [ 0; 1 ] in
  let collected = ref [] in
  let make node ann =
    let me = Proc_id.initial node in
    let callbacks =
      {
        Endpoint.on_view =
          (fun ev ->
            if View.size ev.Endpoint.view = 2 then
              collected := ev.Endpoint.annotations :: !collected);
        on_message = (fun ~sender:_ (_ : int) -> ());
      }
    in
    let ep =
      Endpoint.create sim net ~me ~universe ~config:Endpoint.default_config
        ~callbacks
    in
    Endpoint.set_annotation ep (Some ann);
    ep
  in
  let _a = make 0 "state-of-p0" and _b = make 1 "state-of-p1" in
  ignore (Sim.run ~until:2.0 sim);
  check Alcotest.bool "both saw the merged view" true (List.length !collected = 2);
  List.iter
    (fun anns ->
      check
        (Alcotest.option Alcotest.string)
        "p0 annotation" (Some "state-of-p0")
        (Option.join (List.assoc_opt (Proc_id.initial 0) anns));
      check
        (Alcotest.option Alcotest.string)
        "p1 annotation" (Some "state-of-p1")
        (Option.join (List.assoc_opt (Proc_id.initial 1) anns)))
    !collected

(* ---------- randomized campaigns ---------- *)

let campaign seed =
  let c = Cluster.create ~seed ~n:6 () in
  let rng = Vs_util.Rng.create (Int64.add seed 4242L) in
  let script =
    Faults.random_script rng ~nodes:[ 0; 1; 2; 3; 4; 5 ] ~start:1.0
      ~duration:5.0 ~mean_gap:0.4 ()
  in
  Cluster.run_script c script;
  Cluster.pump_traffic c ~start:0.5 ~until:6.5 ~mean_gap:0.02;
  Cluster.run c ~until:9.5;
  (Oracle.check_all (Cluster.oracle c), Cluster.stable_view_reached c)

let random_campaign_property =
  QCheck.Test.make ~name:"random fault campaigns satisfy the VS spec" ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let errs, stable = campaign (Int64.of_int (seed + 1)) in
      errs = [] && stable)

(* Property-style sweep: the full VS spec must hold across the loss/dup
   grid that the reliable control plane is meant to absorb, including a
   crash mid-run (so flushes happen on the lossy links too). *)
let loss_sweep_run ~drop ~dup ~seed =
  let net_config =
    { Net.default_config with Net.drop_prob = drop; Net.dup_prob = dup }
  in
  let c = Cluster.create ~seed ~net_config ~n:4 () in
  Cluster.run c ~until:4.0;
  for _ = 1 to 5 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ~order:Endpoint.Total ();
    Cluster.multicast_from c ~node:2 ()
  done;
  Cluster.run c ~until:5.0;
  Cluster.apply_action c (Faults.Crash 3);
  Cluster.run c ~until:8.0;
  no_errors
    (Printf.sprintf "loss sweep drop=%.2f dup=%.2f seed=%Ld" drop dup seed)
    (Oracle.check_all (Cluster.oracle c));
  check Alcotest.bool
    (Printf.sprintf "stable drop=%.2f dup=%.2f seed=%Ld" drop dup seed)
    true (Cluster.stable_view_reached c);
  Cluster.stats_total c

let test_loss_dup_sweep () =
  let heavy_loss_retries = ref 0 in
  List.iter
    (fun drop ->
      List.iter
        (fun dup ->
          List.iter
            (fun seed ->
              let st = loss_sweep_run ~drop ~dup ~seed in
              if drop >= 0.2 then
                heavy_loss_retries :=
                  !heavy_loss_retries + st.Endpoint.ctl_retries)
            [ 21L; 22L; 23L ])
        [ 0.0; 0.1 ])
    [ 0.0; 0.05; 0.2 ];
  (* At 20% loss the retry layer must actually be doing work. *)
  check Alcotest.bool "control retries under heavy loss" true
    (!heavy_loss_retries > 0)

(* Regression for peer-served retransmits: messages from a sender that
   crashes right after multicasting can only be recovered from the logs of
   the surviving members (the NACK rotation).  Several seeds are run; all
   must satisfy the spec and at least one must exercise the peer path. *)
let test_peer_served_retransmit () =
  let peer_served = ref 0 in
  List.iter
    (fun seed ->
      let net_config = { Net.default_config with Net.drop_prob = 0.25 } in
      let c = Cluster.create ~seed ~net_config ~n:3 () in
      Cluster.run c ~until:3.0;
      for _ = 1 to 20 do
        Cluster.multicast_from c ~node:2 ()
      done;
      Cluster.apply_action c (Faults.Crash 2);
      Cluster.run c ~until:7.0;
      no_errors
        (Printf.sprintf "peer retransmit seed=%Ld" seed)
        (Oracle.check_all (Cluster.oracle c));
      let st = Cluster.stats_total c in
      peer_served := !peer_served + st.Endpoint.peer_retransmits)
    [ 301L; 302L; 303L; 304L; 305L ];
  check Alcotest.bool "gaps served from a peer's log" true (!peer_served > 0)

let test_lossy_campaign () =
  let net_config = { Net.default_config with Net.drop_prob = 0.05 } in
  let c = Cluster.create ~seed:911L ~net_config ~n:5 () in
  let rng = Vs_util.Rng.create 1911L in
  let script =
    Faults.random_script rng ~nodes:[ 0; 1; 2; 3; 4 ] ~start:1.0 ~duration:4.0
      ~mean_gap:0.5 ()
  in
  Cluster.run_script c script;
  Cluster.pump_traffic c ~start:0.5 ~until:5.5 ~mean_gap:0.03;
  Cluster.run c ~until:9.0;
  no_errors "lossy campaign" (Oracle.check_all (Cluster.oracle c))

(* ---------- data-plane hot paths: stash, stability floor, NACK, batching ---------- *)

(* Regression for the flush stash: multicasts issued while a view change is
   in progress are stashed until the next install.  The stash used to be
   rebuilt by list append per message — quadratic in a burst like this one —
   and is now a queue; what must not change is that the burst survives the
   install complete and in per-origin order. *)
let test_stash_order_during_flush () =
  let c = Cluster.create ~seed:515L ~n:3 () in
  Cluster.run c ~until:1.0;
  Cluster.apply_action c (Faults.Crash 2);
  let sim = Cluster.sim c in
  ignore
    (Sim.after sim 0.16 (fun () ->
         (* Inside the membership change window. *)
         for _ = 1 to 40 do
           Cluster.multicast_from c ~node:0 ~order:Endpoint.Total ();
           Cluster.multicast_from c ~node:1 ~order:Endpoint.Total ()
         done));
  Cluster.run c ~until:6.0;
  let oracle = Cluster.oracle c in
  no_errors "stash burst" (Oracle.check_all oracle);
  List.iter
    (fun node ->
      let proc = Proc_id.initial node in
      let mids = List.map snd (Oracle.deliveries_of oracle ~proc) in
      check Alcotest.int
        (Printf.sprintf "node %d delivers the whole burst" node)
        80 (List.length mids);
      (* Delivery order must respect multicast order per origin. *)
      let last = Hashtbl.create 4 in
      List.iter
        (fun (m : Oracle.msg_id) ->
          (match Hashtbl.find_opt last m.Oracle.m_sender with
          | Some prev when prev >= m.Oracle.m_index ->
              Alcotest.failf "node %d: origin order broken (%d after %d)" node
                m.Oracle.m_index prev
          | _ -> ());
          Hashtbl.replace last m.Oracle.m_sender m.Oracle.m_index)
        mids)
    [ 0; 1 ]

(* The stability floor used to be an assoc-list scan per (member, sender)
   pair; it is now a table-based fold.  Pin the rewrite against the original
   List.assoc_opt formulation on random report states. *)
let stability_floor_reference ~vectors ~members ~sender =
  List.fold_left
    (fun floor member ->
      let reported =
        match List.assoc_opt member vectors with
        | None -> 0
        | Some vector -> (
            match List.assoc_opt sender vector with Some n -> n | None -> 0)
      in
      min floor reported)
    max_int members

let test_stability_floor_matches_reference () =
  let rng = Vs_util.Rng.create 626L in
  let procs = Array.init 8 Proc_id.initial in
  for _ = 1 to 300 do
    let m = 1 + Vs_util.Rng.int rng 8 in
    let members = List.init m (fun i -> procs.(i)) in
    let vectors =
      List.filter_map
        (fun member ->
          if Vs_util.Rng.bool rng 0.8 then
            Some
              ( member,
                List.filter_map
                  (fun s ->
                    if Vs_util.Rng.bool rng 0.7 then
                      Some (s, Vs_util.Rng.int rng 50)
                    else None)
                  members )
          else None)
        members
    in
    List.iter
      (fun sender ->
        check Alcotest.int "floor matches assoc-list reference"
          (stability_floor_reference ~vectors ~members ~sender)
          (Endpoint.stability_floor_of ~vectors ~members ~sender))
      members
  done

(* The NACK retransmission rotation used to pick each round's target with
   List.nth over a freshly filtered peer list; it now indexes a cached
   array.  The rotation must be byte-identical to the old selection. *)
let nack_target_reference ~me ~members ~sender ~round =
  if round = 0 then sender
  else
    let peers = List.filter (fun m -> not (Proc_id.equal m me)) members in
    match peers with
    | [] -> sender
    | _ -> List.nth peers (round mod List.length peers)

let test_nack_targets_match_reference () =
  let rng = Vs_util.Rng.create 727L in
  let procs = Array.init 7 Proc_id.initial in
  for _ = 1 to 200 do
    let m = 1 + Vs_util.Rng.int rng 7 in
    let members = List.init m (fun i -> procs.(i)) in
    let me = procs.(Vs_util.Rng.int rng m) in
    let sender = procs.(Vs_util.Rng.int rng m) in
    let rounds = 12 in
    let expected =
      List.init rounds (fun round ->
          nack_target_reference ~me ~members ~sender ~round)
    in
    let got = Endpoint.nack_targets_of ~me ~members ~sender ~rounds in
    check Alcotest.bool "nack rotation matches List.nth reference" true
      (List.length got = rounds && List.for_all2 Proc_id.equal expected got)
  done

(* The batched wire format under loss, duplication and a crash: the full VS
   spec must hold, and batch rounds must actually have been shipped. *)
let batched_config =
  {
    Endpoint.default_config with
    Endpoint.batching = true;
    stability_interval = Some 0.05;
    pipeline_depth = 4;
    batch_max = 32;
  }

let test_batched_lossy_run () =
  let net_config =
    { Net.default_config with Net.drop_prob = 0.1; Net.dup_prob = 0.05 }
  in
  let c = Cluster.create ~seed:808L ~net_config ~config:batched_config ~n:4 () in
  Cluster.run c ~until:1.5;
  for _ = 1 to 40 do
    Cluster.multicast_from c ~node:0 ();
    Cluster.multicast_from c ~node:1 ~order:Endpoint.Total ();
    Cluster.multicast_from c ~node:2 ()
  done;
  Cluster.run c ~until:4.0;
  Cluster.apply_action c (Faults.Crash 3);
  Cluster.run c ~until:8.0;
  no_errors "batched lossy run" (Oracle.check_all (Cluster.oracle c));
  let st = Cluster.stats_total c in
  check Alcotest.bool "batch rounds shipped" true (st.Endpoint.batches_sent > 0);
  check Alcotest.bool "stable view reached" true (Cluster.stable_view_reached c)

let () =
  Alcotest.run "vs_vsync"
    [
      ( "formation",
        [
          Alcotest.test_case "initial singletons" `Quick test_initial_singleton_views;
          Alcotest.test_case "group forms" `Quick test_group_forms;
          Alcotest.test_case "messaging" `Quick test_messaging_all_delivered;
          Alcotest.test_case "crash shrinks" `Quick test_crash_shrinks_view;
          Alcotest.test_case "leave shrinks" `Quick test_leave_shrinks_view;
          Alcotest.test_case "recovery rejoins fresh" `Quick
            test_recovery_rejoins_as_new_process;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "concurrent views" `Quick test_concurrent_partitions;
          Alcotest.test_case "merge carries priors" `Quick test_merge_carries_priors;
          Alcotest.test_case "agreement at boundary" `Quick
            test_agreement_across_partition_boundary;
        ] );
      ( "data path",
        [
          Alcotest.test_case "queued during flush" `Quick
            test_multicast_queued_during_flush;
          Alcotest.test_case "lossy network recovers" `Quick
            test_lossy_network_recovers;
          Alcotest.test_case "duplicating network" `Quick test_duplicating_network;
          Alcotest.test_case "stability trims logs" `Quick
            test_stability_trims_logs;
          Alcotest.test_case "stability disabled" `Quick
            test_stability_disabled_is_correct;
        ] );
      ( "causal order",
        [
          Alcotest.test_case "chains" `Quick test_causal_chains;
          QCheck_alcotest.to_alcotest causal_property;
        ] );
      ( "isis throttle",
        [
          Alcotest.test_case "converges" `Quick test_one_at_a_time_throttle;
          Alcotest.test_case "views grow by one" `Quick
            test_one_at_a_time_views_grow_by_one;
        ] );
      ( "annotations",
        [ Alcotest.test_case "collected at flush" `Quick test_annotations_collected ] );
      ( "hot paths",
        [
          Alcotest.test_case "stash order during flush" `Quick
            test_stash_order_during_flush;
          Alcotest.test_case "stability floor vs reference" `Quick
            test_stability_floor_matches_reference;
          Alcotest.test_case "nack rotation vs reference" `Quick
            test_nack_targets_match_reference;
          Alcotest.test_case "batched lossy run" `Quick test_batched_lossy_run;
        ] );
      ( "campaigns",
        [
          QCheck_alcotest.to_alcotest ~long:false random_campaign_property;
          Alcotest.test_case "lossy campaign" `Slow test_lossy_campaign;
          Alcotest.test_case "loss/dup sweep" `Slow test_loss_dup_sweep;
          Alcotest.test_case "peer-served retransmit" `Quick
            test_peer_served_retransmit;
        ] );
    ]
