(* @trace-schema drift guard.

   A synthetic event stream covering every Event.t variant is committed as
   test/trace_schema_sample.jsonl.  This check regenerates the sample from
   the current schema and verifies

     1. the committed file is byte-identical to what the current exporter
        produces (field names, key order and float repr are all frozen);
     2. every line parses back and re-emits byte-identically (the parser and
        printer agree — a canonical round-trip);
     3. the sample covers all of Event.all_type_names, so adding a variant
        without extending the sample fails loudly.

   Regenerate after an intentional schema change with:

     dune exec test/trace_schema_check.exe -- --write test/trace_schema_sample.jsonl
*)

module Event = Vs_obs.Event
module Recorder = Vs_obs.Recorder
module Export = Vs_obs.Export

let p node inc = { Event.node; inc }

let v epoch node = { Event.epoch; proposer = p node 0 }

let sample_entries =
  let e time event = { Recorder.time; event } in
  [
    (* Data-path events appear both without a correlation identity (control
       traffic) and with one (application payloads), so the optional trailing
       "msg" key is exercised in both states. *)
    e 0.
      (Event.Send
         { src = p 0 0; dst = p 1 0; kind = "heartbeat"; bytes = 16; msg = None });
    e 0.0012
      (Event.Recv
         {
           src = p 0 0; dst = p 1 0; kind = "data";
           msg = Some { Event.origin = p 0 0; mseq = 3 };
         });
    e 0.002
      (Event.Drop
         {
           src = p 1 0; dst = p 2 (-1); kind = "data"; reason = "loss";
           msg = Some { Event.origin = p 1 0; mseq = 0 };
         });
    e 0.0031
      (Event.Dup { src = p 1 0; dst = p 0 0; kind = "stable"; msg = None });
    e 0.0125
      (Event.Retransmit { proc = p 0 0; origin = p 1 0; count = 3; peer = true });
    e 0.02 (Event.Backoff { proc = p 0 0; dst = p 2 0; attempt = 2; delay = 0.05 });
    e 0.03 (Event.Suspect { proc = p 0 0; peer = p 2 0 });
    e 0.04 (Event.Unsuspect { proc = p 0 0; peer = p 2 0 });
    e 0.05
      (Event.Propose
         { proc = p 0 0; vid = v 2 0; members = [ p 0 0; p 1 0; p 2 1 ] });
    e 0.06 (Event.Flush { proc = p 1 0; vid = v 2 0; seen = 4 });
    e 0.07
      (Event.Install
         { proc = p 1 0; vid = v 2 0; members = [ p 0 0; p 1 0; p 2 1 ]; sync = 2 });
    e 0.08
      (Event.Eview
         { proc = p 1 0; vid = v 2 0; eseq = 1; cause = "view"; subviews = 2;
           svsets = 1 });
    e 0.09
      (Event.Mode_change
         { proc = p 1 0; from_mode = "NORMAL"; into_mode = "SETTLING";
           cause = "settling-entered" });
    e 0.1
      (Event.Settle
         { proc = p 1 0; vid = v 2 0; transfer = true; creation = "none";
           merging = false; clusters = 2 });
    e 0.11 (Event.Task_start { proc = p 1 0; task = "transfer"; vid = v 2 0 });
    e 0.127 (Event.Task_done { proc = p 1 0; task = "transfer"; vid = v 2 0 });
    e 0.2 (Event.Crash { proc = p 2 1 });
    e 0.3 (Event.Partition { components = [ [ 0; 1 ]; [ 2 ] ] });
    e 0.4 Event.Heal;
    e 0.45
      (Event.Corrupt
         { proc = p 1 0; field = "send_seq"; detail = "3 -> 7" });
    (* Both quarantine shapes: reconverged (a real cut time) and the
       never-reconverged sentinel (cut = -1). *)
    e 0.46
      (Event.Quarantine
         { bound = 2; opened = 0.45; cut = 0.9; views = 3; quarantined = 1 });
    e 0.47
      (Event.Quarantine
         { bound = 2; opened = 0.45; cut = -1.; views = 1; quarantined = 2 });
    e 0.5 (Event.Note { component = "app"; message = "custom \"quoted\" marker" });
  ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "trace-schema FAIL: %s\n" msg)
    fmt

let check path =
  let expected = Export.jsonl_of_entries sample_entries in
  (* 1. the committed sample matches the current schema byte-for-byte *)
  let actual = read_file path in
  if not (String.equal actual expected) then
    fail "%s is out of date with the event schema — regenerate with --write"
      path;
  (* 2. each line round-trips: parse then re-emit is the identity *)
  List.iteri
    (fun i line ->
      if not (String.equal line "") then
        match Export.entry_of_jsonl line with
        | Error e -> fail "line %d does not parse: %s" (i + 1) e
        | Ok entry ->
            let again = Export.jsonl_of_entry entry in
            if not (String.equal again line) then
              fail "line %d is not a fixed point: %s -> %s" (i + 1) line again)
    (String.split_on_char '\n' actual);
  (* 3. the sample exercises every wire type name *)
  let covered =
    List.map (fun e -> Event.type_name e.Recorder.event) sample_entries
  in
  List.iter
    (fun name ->
      if not (List.mem name covered) then
        fail "event type %S is not covered by the sample" name)
    Event.all_type_names;
  if !failures = 0 then print_endline "trace-schema OK"
  else exit 1

let write path =
  let oc = open_out_bin path in
  output_string oc (Export.jsonl_of_entries sample_entries);
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  match Array.to_list Sys.argv with
  | [ _; "--write"; path ] -> write path
  | [ _; path ] -> check path
  | _ ->
      prerr_endline "usage: trace_schema_check [--write] <sample.jsonl>";
      exit 2
